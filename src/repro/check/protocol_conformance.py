"""Static wire-protocol conformance checker (the ``REP2xx`` pack).

Three codebases speak the memcached text dialect: the server parser
(:mod:`repro.memcached.protocol`), the asyncio client
(:mod:`repro.net.client`), and the proxy tier
(:mod:`repro.proxy.server` / :mod:`repro.proxy.router`).  Nothing at
runtime forces them to agree -- a verb added server-side but framed
wrong client-side only fails when that command is first exercised over a
socket.  This module extracts each side's protocol model *statically*
(pure AST, no imports of the checked code) and cross-checks them, so
protocol drift becomes a lint failure:

========  ==========================  =====================================
code      name                        drift caught
========  ==========================  =====================================
REP201    client-verb-unhandled       client emits a verb the server parser
                                      has no handler for
REP202    framing-mismatch            client reads a response framing
                                      (``VALUE``/``TS``/``ITEM``/``STAT``/
                                      line) the server never produces for
                                      that verb, or pairs a verb with an
                                      undefined reader
REP203    arity-mismatch              client emits an argument count outside
                                      what the server accepts for the verb
REP204    router-method-missing       proxy router calls a ``NodeClient``
                                      method that does not exist
REP205    proxy-verb-unhandled        proxy routes a verb to backends that
                                      the backend server does not handle
========  ==========================  =====================================

The extraction leans on the repo's own conventions: server handlers are
``_cmd_<verb>`` methods (plus the ``STORAGE_COMMANDS`` header/payload
path), client emissions go through ``_command(...)`` paired with a
``_read_*`` reader inside a ``_Request``, and the proxy's backend fan-out
set is the ``ROUTED_COMMANDS`` literal.  Commands with multi-line
*request* bodies (storage payloads, ``batch_import`` item blocks,
``mig_export`` key lines) are modeled through their header line only --
the continuation state machines are paired via
:data:`SERVER_CONTINUATIONS`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.lint import Violation

#: Response-framing classes, keyed by the leading token of block lines.
FRAMING_TOKENS = {
    "VALUE": "values",
    "TS": "ts",
    "ITEM": "items",
    "STAT": "stats",
}

#: Server methods that produce (part of) a verb's response *outside* its
#: ``_cmd_`` handler: the continuation methods of multi-line request
#: state machines.  One hand-maintained table beats guessing the state
#: graph from the AST; a new stateful command must register here.
SERVER_CONTINUATIONS: dict[str, tuple[str, ...]] = {
    "batch_import": ("_import_header_line", "_finish_import"),
    "mig_export": ("_export_key_line", "_finish_export"),
}

#: Continuations for the storage header/payload path (shared by every
#: verb in ``STORAGE_COMMANDS``).
STORAGE_CONTINUATIONS = ("_begin_storage", "_store", "_run_store")

#: Reader functions that deliberately accept *any* framing (the raw
#: escape hatch behind ``NodeClient.execute``).
SNIFFING_READERS = frozenset({"_read_sniffed"})


@dataclass
class VerbSpec:
    """What the server accepts and produces for one command verb."""

    verb: str
    #: Accepted argument count range, ``(min, max)``; ``max=None`` means
    #: unbounded (multi-key commands).
    arity: tuple[int, int | None]
    #: Framing classes the verb can answer with (``values``/``ts``/
    #: ``items``/``stats``/``line``); more than one for dispatching
    #: verbs like ``stats``.
    framings: set[str] = field(default_factory=set)
    line: int = 0


@dataclass
class ServerModel:
    """The protocol surface extracted from the server parser."""

    path: str
    verbs: dict[str, VerbSpec] = field(default_factory=dict)


@dataclass
class Emission:
    """One client-side command emission paired with its reader."""

    verb: str
    #: Emitted argument count range (``max=None`` for joined multi-key).
    arity: tuple[int, int | None]
    #: The ``_read_*`` reader consuming the response, if resolvable.
    reader: str | None
    #: Framing class the reader expects, ``None`` when unknown.
    framing: str | None
    method: str
    line: int


@dataclass
class ClientModel:
    """The protocol surface extracted from the client."""

    path: str
    emissions: list[Emission] = field(default_factory=list)
    #: Public + private method names of ``NodeClient`` (for REP204).
    methods: set[str] = field(default_factory=set)
    #: Framing class per defined ``_read_*`` function.
    readers: dict[str, str] = field(default_factory=dict)


@dataclass
class ProxyModel:
    """The protocol surface extracted from the proxy tier."""

    server_path: str
    router_path: str
    #: Verbs the proxy fans into backends, with the defining line.
    routed: dict[str, int] = field(default_factory=dict)
    #: ``NodeClient`` methods the router invokes: ``(method, line)``.
    client_calls: list[tuple[str, int]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        node.name: node
        for node in ast.iter_child_nodes(cls)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _frozenset_literal(tree: ast.Module, target: str) -> set[str]:
    """String members of ``TARGET = frozenset({...})`` at module level."""
    for node in ast.iter_child_nodes(tree):
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == target
                for t in node.targets
            )
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "frozenset"
            and node.value.args
            and isinstance(node.value.args[0], ast.Set)
        ):
            continue
        return {
            element.value
            for element in node.value.args[0].elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        }
    return set()


def _string_tokens(func: ast.AST) -> set[str]:
    """Leading tokens of every response literal inside ``func``.

    Covers ``b"STORED" + CRLF`` style byte constants, ``f"VALUE {key}
    ..."`` f-strings (leading constant segment), and plain str constants
    later ``.encode()``-ed.
    """
    tokens: set[str] = set()
    for node in ast.walk(func):
        text: str | None = None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bytes):
                text = node.value.decode("utf-8", "replace")
            elif isinstance(node.value, str):
                text = node.value
        elif isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                text = first.value
        if not text:
            continue
        head = text.split(None, 1)[0] if text.split() else ""
        if head:
            tokens.add(head)
    return tokens


def _framings_from_tokens(tokens: set[str]) -> set[str]:
    framings = {
        FRAMING_TOKENS[token] for token in tokens if token in FRAMING_TOKENS
    }
    return framings or {"line"}


def _self_call_targets(func: ast.AST) -> set[str]:
    """Names of methods called as ``self.<name>(...)`` inside ``func``."""
    targets: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            targets.add(node.func.attr)
    return targets


# ---------------------------------------------------------------------------
# Server model
# ---------------------------------------------------------------------------


def _arity_from_len_checks(
    funcs: list[ast.AST], arg_names: tuple[str, ...] = ("args", "keys")
) -> tuple[int, int | None] | None:
    """Arity implied by ``len(args) != N`` / ``not in (...)`` guards."""
    for func in funcs:
        for node in ast.walk(func):
            if not isinstance(node, ast.Compare):
                continue
            left, ops, comparators = node.left, node.ops, node.comparators
            if not (
                isinstance(left, ast.Call)
                and isinstance(left.func, ast.Name)
                and left.func.id == "len"
                and left.args
                and isinstance(left.args[0], ast.Name)
                and left.args[0].id in arg_names
            ):
                continue
            op, comparator = ops[0], comparators[0]
            if isinstance(op, ast.NotEq) and isinstance(
                comparator, ast.Constant
            ):
                n = comparator.value
                return (n, n)
            if isinstance(op, ast.NotIn) and isinstance(
                comparator, ast.Tuple
            ):
                counts = [
                    element.value
                    for element in comparator.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, int)
                ]
                if counts:
                    return (min(counts), max(counts))
    # `if not keys: return ERROR` -> at least one, unbounded.
    for func in funcs:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.If)
                and isinstance(node.test, ast.UnaryOp)
                and isinstance(node.test.op, ast.Not)
                and isinstance(node.test.operand, ast.Name)
                and node.test.operand.id in arg_names
            ):
                return (1, None)
    return None


def _storage_arity(
    begin_storage: ast.AST, verb: str
) -> tuple[int, int | None]:
    """Arity for one storage verb, derived from ``_begin_storage``.

    The method computes ``expected = <cas_parts> if command == "cas"
    else <parts>`` and rejects header lines whose part count is outside
    ``(expected, expected + 1)``; ``parts`` counts the verb itself, so
    the *argument* arity is ``expected - 1 .. expected``.
    """
    for node in ast.walk(begin_storage):
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.IfExp)
            and isinstance(node.value.body, ast.Constant)
            and isinstance(node.value.orelse, ast.Constant)
        ):
            continue
        expected = (
            node.value.body.value if verb == "cas" else node.value.orelse.value
        )
        return (expected - 1, expected)
    # Conservative fallback: the classic memcached storage header.
    return (5, 6) if verb == "cas" else (4, 5)


def extract_server_model(
    source: str, path: str = "memcached/protocol.py"
) -> ServerModel:
    """Extract the verbs/arities/framings ``TextProtocolServer`` handles."""
    tree = ast.parse(source)
    model = ServerModel(path=path)
    cls = _class_def(tree, "TextProtocolServer")
    if cls is None:
        return model
    methods = _methods(cls)

    def response_funcs(names: tuple[str, ...]) -> list[ast.AST]:
        return [methods[name] for name in names if name in methods]

    # 1. `_cmd_<verb>` handlers (+ one hop of self-calls for shared
    #    bodies like `_arith` and the `stats` sub-dispatches).
    for name, func in methods.items():
        if not name.startswith("_cmd_"):
            continue
        verb = name[len("_cmd_") :]
        hops = [
            methods[target]
            for target in _self_call_targets(func)
            if target in methods and target != name
        ]
        chain: list[ast.AST] = [func, *hops]
        chain.extend(
            methods[cont]
            for cont in SERVER_CONTINUATIONS.get(verb, ())
            if cont in methods
        )
        arity = _arity_from_len_checks(chain) or (0, None)
        tokens: set[str] = set()
        for part in chain:
            tokens |= _string_tokens(part)
        model.verbs[verb] = VerbSpec(
            verb=verb,
            arity=arity,
            framings=_framings_from_tokens(tokens),
            line=func.lineno,
        )

    # 2. Storage verbs share the `_begin_storage` header/payload path.
    storage = _frozenset_literal(tree, "STORAGE_COMMANDS")
    storage_funcs = response_funcs(STORAGE_CONTINUATIONS)
    storage_tokens: set[str] = set()
    for func in storage_funcs:
        storage_tokens |= _string_tokens(func)
    storage_framings = _framings_from_tokens(storage_tokens)
    begin = methods.get("_begin_storage")
    for verb in storage:
        arity = (
            _storage_arity(begin, verb) if begin is not None else (4, 5)
        )
        model.verbs[verb] = VerbSpec(
            verb=verb,
            arity=arity,
            framings=set(storage_framings),
            line=begin.lineno if begin is not None else cls.lineno,
        )

    # 3. Verbs handled by literal comparison in `_dispatch` (the
    #    `trace` framing line).
    dispatch = methods.get("_dispatch")
    if dispatch is not None:
        for node in ast.walk(dispatch):
            if not (
                isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == "command"
                and len(node.comparators) == 1
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, str)
            ):
                continue
            verb = node.comparators[0].value
            if verb not in model.verbs:
                model.verbs[verb] = VerbSpec(
                    verb=verb,
                    arity=(0, None),
                    framings={"line"},
                    line=node.lineno,
                )
    return model


# ---------------------------------------------------------------------------
# Client model
# ---------------------------------------------------------------------------


def _command_template(call: ast.Call) -> tuple[str, tuple[int, int | None]] | None:
    """``(verb, arity)`` encoded by one ``_command(...)`` call.

    Handles the three emission shapes the client uses: plain string
    constants (``"flush_all"``), f-strings whose placeholders each stand
    for one argument field (``f"set {key} {flags} {exptime} {size}"``),
    and ``"get " + " ".join(...)`` joined multi-key commands.  Data
    lines (f-strings *starting* with a placeholder) return ``None``.
    """
    if not call.args:
        return None
    template = call.args[0]
    if isinstance(template, ast.Constant) and isinstance(template.value, str):
        parts = template.value.split()
        if not parts:
            return None
        count = len(parts) - 1
        return parts[0], (count, count)
    if isinstance(template, ast.JoinedStr):
        first = template.values[0] if template.values else None
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            return None  # data line: starts with a placeholder
        rendered = ""
        for value in template.values:
            if isinstance(value, ast.Constant):
                rendered += str(value.value)
            else:
                rendered += "\x00"  # one field per placeholder
        parts = rendered.split()
        if not parts or parts[0] == "\x00":
            return None
        count = len(parts) - 1
        return parts[0], (count, count)
    if (
        isinstance(template, ast.BinOp)
        and isinstance(template.op, ast.Add)
        and isinstance(template.left, ast.Constant)
        and isinstance(template.left.value, str)
    ):
        parts = template.left.value.split()
        if not parts:
            return None
        # `"get " + " ".join(keys)`: one verb, unbounded key list.
        return parts[0], (1, None)
    return None


def extract_client_model(
    source: str, path: str = "net/client.py"
) -> ClientModel:
    """Extract the verbs/arities/readers ``NodeClient`` emits."""
    tree = ast.parse(source)
    model = ClientModel(path=path)

    # Reader framings from the module-level `_read_*` functions: the
    # byte tokens a reader recognizes identify its framing class.
    for node in ast.iter_child_nodes(tree):
        if not (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name.startswith("_read_")
        ):
            continue
        tokens = {
            token
            for token in _string_tokens(node)
            if token in FRAMING_TOKENS
        }
        if node.name in SNIFFING_READERS or len(tokens) > 1:
            continue  # framing-agnostic reader; conformance can't pin it
        model.readers[node.name] = (
            FRAMING_TOKENS[next(iter(tokens))] if tokens else "line"
        )

    cls = _class_def(tree, "NodeClient")
    if cls is None:
        return model
    methods = _methods(cls)
    model.methods = set(methods)

    for name, func in methods.items():
        emissions: list[tuple[str, tuple[int, int | None], int]] = []
        readers: list[str] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            called = node.func
            if isinstance(called, ast.Name) and called.id == "_command":
                encoded = _command_template(node)
                if encoded is not None:
                    verb, arity = encoded
                    emissions.append((verb, arity, node.lineno))
            elif (
                isinstance(called, ast.Name)
                and called.id == "_Request"
                and len(node.args) >= 2
            ):
                reader = node.args[1]
                if isinstance(reader, ast.Name):
                    readers.append(reader.id)
        # Reader pairing is per method scope: every emission in the
        # method shares the method's single reader (the repo's idiom --
        # one verb shape per client method).
        reader_name = readers[0] if len(set(readers)) == 1 else None
        if reader_name in SNIFFING_READERS:
            continue  # raw escape hatch (`execute`): nothing to check
        for verb, arity, lineno in emissions:
            model.emissions.append(
                Emission(
                    verb=verb,
                    arity=arity,
                    reader=reader_name,
                    framing=model.readers.get(reader_name or ""),
                    method=name,
                    line=lineno,
                )
            )
    return model


# ---------------------------------------------------------------------------
# Proxy model
# ---------------------------------------------------------------------------


def extract_proxy_model(
    server_source: str,
    router_source: str,
    server_path: str = "proxy/server.py",
    router_path: str = "proxy/router.py",
) -> ProxyModel:
    """Extract the verbs the proxy routes and the client calls it makes."""
    server_tree = ast.parse(server_source)
    router_tree = ast.parse(router_source)
    model = ProxyModel(server_path=server_path, router_path=router_path)

    routed_line = 0
    for node in ast.iter_child_nodes(server_tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "ROUTED_COMMANDS"
            for t in node.targets
        ):
            routed_line = node.lineno
    for verb in _frozenset_literal(server_tree, "ROUTED_COMMANDS"):
        model.routed[verb] = routed_line

    # `await self.client(<backend>).<method>(...)` calls in the router.
    for node in ast.walk(router_tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Attribute)
            and node.func.value.func.attr == "client"
        ):
            continue
        model.client_calls.append((node.func.attr, node.lineno))
    return model


# ---------------------------------------------------------------------------
# Cross-checks
# ---------------------------------------------------------------------------


def _violation(
    code: str, rule: str, path: str, line: int, message: str
) -> Violation:
    return Violation(
        code=code, rule=rule, path=path, line=line, col=0, message=message
    )


def _arity_within(
    emitted: tuple[int, int | None], accepted: tuple[int, int | None]
) -> bool:
    emit_min, emit_max = emitted
    ok_min, ok_max = accepted
    if emit_min < ok_min:
        return False
    if ok_max is None:
        return True
    if emit_max is None:
        return False
    return emit_max <= ok_max


def check_models(
    server: ServerModel,
    client: ClientModel,
    proxy: ProxyModel | None = None,
) -> list[Violation]:
    """Cross-check the extracted models; one Violation per drift."""
    violations: list[Violation] = []

    for emission in client.emissions:
        spec = server.verbs.get(emission.verb)
        if spec is None:
            violations.append(
                _violation(
                    "REP201",
                    "client-verb-unhandled",
                    client.path,
                    emission.line,
                    f"`{emission.method}` emits `{emission.verb}` but "
                    f"the server parser ({server.path}) has no "
                    f"`_cmd_{emission.verb}` handler",
                )
            )
            continue
        if emission.reader is not None and emission.framing is None:
            violations.append(
                _violation(
                    "REP202",
                    "framing-mismatch",
                    client.path,
                    emission.line,
                    f"`{emission.method}` pairs `{emission.verb}` with "
                    f"reader `{emission.reader}`, which is not defined "
                    "as a framing reader in the client module",
                )
            )
        elif (
            emission.framing is not None
            and emission.framing not in spec.framings
        ):
            produced = ", ".join(sorted(spec.framings))
            violations.append(
                _violation(
                    "REP202",
                    "framing-mismatch",
                    client.path,
                    emission.line,
                    f"`{emission.method}` reads `{emission.verb}` with "
                    f"`{emission.reader}` ({emission.framing} framing) "
                    f"but the server produces: {produced}",
                )
            )
        if not _arity_within(emission.arity, spec.arity):
            accepted = (
                f"{spec.arity[0]}..{spec.arity[1] if spec.arity[1] is not None else 'n'}"
            )
            emitted = (
                f"{emission.arity[0]}..{emission.arity[1] if emission.arity[1] is not None else 'n'}"
            )
            violations.append(
                _violation(
                    "REP203",
                    "arity-mismatch",
                    client.path,
                    emission.line,
                    f"`{emission.method}` emits `{emission.verb}` with "
                    f"{emitted} argument(s) but the server accepts "
                    f"{accepted}",
                )
            )

    if proxy is not None:
        for method, line in proxy.client_calls:
            if method not in client.methods:
                violations.append(
                    _violation(
                        "REP204",
                        "router-method-missing",
                        proxy.router_path,
                        line,
                        f"router calls `NodeClient.{method}(...)` but "
                        f"{client.path} defines no such method",
                    )
                )
        for verb, line in sorted(proxy.routed.items()):
            if verb not in server.verbs:
                violations.append(
                    _violation(
                        "REP205",
                        "proxy-verb-unhandled",
                        proxy.server_path,
                        line,
                        f"proxy routes `{verb}` to backends but the "
                        f"backend server parser ({server.path}) does "
                        "not handle it",
                    )
                )

    violations.sort(key=lambda v: (v.path, v.line, v.code))
    return violations


def check_conformance(
    server_path: Path,
    client_path: Path,
    proxy_server_path: Path | None = None,
    proxy_router_path: Path | None = None,
) -> list[Violation]:
    """Run the conformance cross-check over files on disk."""
    server = extract_server_model(
        server_path.read_text(), path=str(server_path)
    )
    client = extract_client_model(
        client_path.read_text(), path=str(client_path)
    )
    proxy = None
    if proxy_server_path is not None and proxy_router_path is not None:
        proxy = extract_proxy_model(
            proxy_server_path.read_text(),
            proxy_router_path.read_text(),
            server_path=str(proxy_server_path),
            router_path=str(proxy_router_path),
        )
    return check_models(server, client, proxy)


def conformance_catalogue() -> list[tuple[str, str, str]]:
    """(code, name, description) rows for docs and ``--list-rules``."""
    return [
        (
            "REP201",
            "client-verb-unhandled",
            "client emits a verb the server parser has no handler for",
        ),
        (
            "REP202",
            "framing-mismatch",
            "client reads a response framing the server never produces",
        ),
        (
            "REP203",
            "arity-mismatch",
            "client argument count outside what the server accepts",
        ),
        (
            "REP204",
            "router-method-missing",
            "proxy router calls a NodeClient method that does not exist",
        ),
        (
            "REP205",
            "proxy-verb-unhandled",
            "proxy routes a verb the backend server does not handle",
        ),
    ]


def default_conformance(root: Path | None = None) -> list[Violation]:
    """Conformance check over this repo's own protocol surfaces.

    ``root`` is the directory containing the ``repro`` package (defaults
    to the installed package's parent, so the check works from any CWD).
    """
    if root is None:
        root = Path(__file__).resolve().parents[2]
    package = root / "repro"
    return check_conformance(
        package / "memcached" / "protocol.py",
        package / "net" / "client.py",
        proxy_server_path=package / "proxy" / "server.py",
        proxy_router_path=package / "proxy" / "router.py",
    )
