"""Runtime event-loop sanitizer for the live tier.

The static REP1xx rules (:mod:`repro.check.async_rules`) catch blocking
patterns the AST can see; this module catches the ones it can't --
third-party calls, dynamic dispatch, callbacks that are merely *slow* --
by instrumenting the loop itself.  A :class:`LoopSanitizer` is opt-in
and attaches to an event loop three ways at once:

1. **asyncio debug mode** plus a tightened ``slow_callback_duration``,
   so the loop itself reports callbacks that hog it;
2. a **log capture** on the ``asyncio`` logger that turns those slow
   callback reports (and "Task was destroyed but it is pending!"
   messages) into structured findings instead of easily-missed stderr
   lines;
3. a **blocking-call trap**: ``time.sleep``, ``socket.create_connection``
   and ``socket.getaddrinfo`` are patched process-wide while any
   sanitizer is installed, and a call landing on a registered loop
   thread raises :class:`~repro.errors.BlockingCallError` (localhost
   speed hides blocked loops; the trap makes them fail loudly).

The patch is refcounted and thread-registered: other threads (pytest's
main thread, executor threads asyncio uses for ``getaddrinfo``) fall
straight through to the real functions, so a sanitizer can be active
while ordinary synchronous code sleeps freely.

Wiring: :class:`~repro.net.runtime.EventLoopThread` accepts a
``sanitizer=`` and installs it on its loop; the live/proxy harnesses and
``repro serve``/``repro proxy``/``repro live-migrate`` expose it as
``sanitize=True`` / ``--sanitize``.  After the run,
:meth:`LoopSanitizer.report` summarizes findings, and
:meth:`LoopSanitizer.check` raises if any were recorded.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import BlockingCallError, InvariantViolation

DEFAULT_SLOW_CALLBACK_S = 0.25
"""Default loop-hog threshold; generous enough for CI noise."""


@dataclass
class SanitizerFinding:
    """One runtime hazard observed by a :class:`LoopSanitizer`."""

    kind: str  # "blocking-call" | "slow-callback" | "pending-task-destroyed"
    message: str
    thread: str

    def render(self) -> str:
        return f"[{self.kind}] ({self.thread}) {self.message}"


# ---------------------------------------------------------------------------
# Process-wide blocking-call trap (refcounted)
# ---------------------------------------------------------------------------

_TRAP_LOCK = threading.Lock()
#: Thread ident -> sanitizer for every installed, trap-enabled sanitizer.
_LOOP_THREADS: dict[int, "LoopSanitizer"] = {}
_ORIGINALS: dict[str, Callable[..., Any]] = {}


def _trap(module: Any, attr: str, label: str) -> None:
    original = getattr(module, attr)
    _ORIGINALS[label] = original

    def guarded(*args: Any, **kwargs: Any) -> Any:
        sanitizer = _LOOP_THREADS.get(threading.get_ident())
        if sanitizer is not None:
            sanitizer._record_blocking(label)
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", attr)
    setattr(module, attr, guarded)


def _install_traps() -> None:
    if _ORIGINALS:
        return
    _trap(time, "sleep", "time.sleep")
    _trap(socket, "create_connection", "socket.create_connection")
    _trap(socket, "getaddrinfo", "socket.getaddrinfo")


def _uninstall_traps() -> None:
    if not _ORIGINALS:
        return
    time.sleep = _ORIGINALS["time.sleep"]  # type: ignore[assignment]
    socket.create_connection = (  # type: ignore[assignment]
        _ORIGINALS["socket.create_connection"]
    )
    socket.getaddrinfo = (  # type: ignore[assignment]
        _ORIGINALS["socket.getaddrinfo"]
    )
    _ORIGINALS.clear()


class _AsyncioLogCapture(logging.Handler):
    """Turns asyncio debug-mode warnings into sanitizer findings."""

    def __init__(self, sanitizer: "LoopSanitizer") -> None:
        super().__init__(level=logging.WARNING)
        self._sanitizer = sanitizer

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            kind = "slow-callback"
        elif "Task was destroyed but it is pending" in message:
            kind = "pending-task-destroyed"
        else:
            return
        self._sanitizer._add_finding(kind, message)


class LoopSanitizer:
    """Opt-in runtime instrumentation for one or more event loops.

    Parameters
    ----------
    slow_callback_s:
        Threshold for the loop's own slow-callback report; anything
        hogging the loop longer becomes a ``slow-callback`` finding.
    trap_blocking:
        Install the process-wide blocking-call trap for threads running
        a sanitized loop.
    raise_on_block:
        Make a trapped blocking call raise
        :class:`~repro.errors.BlockingCallError` at the call site
        (default).  With ``False`` the call is recorded as a finding and
        allowed through -- audit mode.
    """

    def __init__(
        self,
        slow_callback_s: float = DEFAULT_SLOW_CALLBACK_S,
        trap_blocking: bool = True,
        raise_on_block: bool = True,
    ) -> None:
        self.slow_callback_s = slow_callback_s
        self.trap_blocking = trap_blocking
        self.raise_on_block = raise_on_block
        self.findings: list[SanitizerFinding] = []
        self._lock = threading.Lock()
        self._installed_threads: set[int] = set()
        self._capture: _AsyncioLogCapture | None = None

    # ------------------------------------------------------------------
    # Install / uninstall (called on the loop's own thread)
    # ------------------------------------------------------------------

    def install(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to ``loop``; must run on the loop's thread."""
        loop.set_debug(True)
        loop.slow_callback_duration = self.slow_callback_s
        ident = threading.get_ident()
        with _TRAP_LOCK:
            self._installed_threads.add(ident)
            if self.trap_blocking:
                _LOOP_THREADS[ident] = self
                _install_traps()
            if self._capture is None:
                self._capture = _AsyncioLogCapture(self)
                logging.getLogger("asyncio").addHandler(self._capture)

    def uninstall(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Detach from the calling thread's loop; must run on it."""
        ident = threading.get_ident()
        with _TRAP_LOCK:
            self._installed_threads.discard(ident)
            _LOOP_THREADS.pop(ident, None)
            if not _LOOP_THREADS:
                _uninstall_traps()
            if not self._installed_threads and self._capture is not None:
                logging.getLogger("asyncio").removeHandler(self._capture)
                self._capture = None

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------

    def _add_finding(self, kind: str, message: str) -> None:
        finding = SanitizerFinding(
            kind=kind,
            message=message,
            thread=threading.current_thread().name,
        )
        with self._lock:
            self.findings.append(finding)

    def _record_blocking(self, label: str) -> None:
        message = (
            f"blocking `{label}` called on event-loop thread "
            f"{threading.current_thread().name!r}"
        )
        self._add_finding("blocking-call", message)
        if self.raise_on_block:
            raise BlockingCallError(message)

    def report(self) -> dict[str, Any]:
        """A JSON-able summary of everything observed."""
        with self._lock:
            findings = list(self.findings)
        by_kind: dict[str, int] = {}
        for finding in findings:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return {
            "findings": [finding.render() for finding in findings],
            "by_kind": by_kind,
            "clean": not findings,
        }

    def check(self, subject: str = "event loop") -> None:
        """Raise :class:`InvariantViolation` if any finding was recorded."""
        report = self.report()
        if report["clean"]:
            return
        raise InvariantViolation(
            "loop-sanitizer",
            subject,
            "runtime loop hazards observed: "
            + "; ".join(report["findings"][:5]),
            diff={
                kind: {"expected": 0, "actual": count}
                for kind, count in report["by_kind"].items()
            },
        )


def create_sanitizer(
    enabled: bool,
    slow_callback_s: float = DEFAULT_SLOW_CALLBACK_S,
) -> LoopSanitizer | None:
    """``LoopSanitizer`` when ``enabled``, else ``None`` (harness helper)."""
    if not enabled:
        return None
    return LoopSanitizer(slow_callback_s=slow_callback_s)
