"""Brute-force FuseCache reference ("the oracle").

FuseCache's median-of-medians pruning (Section IV) is the subtlest piece
of the reproduction: a silent off-by-one in its boundary handling would
migrate slightly-wrong item sets and quietly distort every hit-ratio
figure.  The oracle is the dumbest possible implementation of the same
specification -- merge everything, sort, take the top ``n`` -- and
:func:`check_fusecache` asserts the fast algorithm selects exactly the
same *multiset* of timestamps (ties may resolve to different lists, which
is allowed; hotness totals may not differ).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.fusecache import (
    FuseCacheResult,
    fuse_cache_detailed,
    selected_multiset,
)
from repro.errors import InvariantViolation

Timestamps = Sequence[float]


def fusecache_oracle(lists: Sequence[Timestamps], n: int) -> list[float]:
    """The reference answer: hottest ``min(n, total)`` timestamps, sorted
    hottest-first, computed by full merge-and-sort."""
    merged = sorted(
        (value for lst in lists for value in lst), reverse=True
    )
    if n < 0:
        raise InvariantViolation(
            "fusecache", "oracle", f"n must be non-negative, got {n}"
        )
    return merged[: min(n, len(merged))]


def check_fusecache(
    lists: Sequence[Timestamps], n: int, validate: bool = True
) -> FuseCacheResult:
    """Run FuseCache and assert it matches the brute-force oracle.

    Verifies the pick counts are in range, their sum equals
    ``min(n, total)``, and the selected multiset of timestamps equals the
    oracle's.  Returns the (trusted) :class:`FuseCacheResult` so callers
    can use the checked answer directly.
    """
    result = fuse_cache_detailed(lists, n, validate=validate)
    for index, (picked, lst) in enumerate(zip(result.topick, lists)):
        if not 0 <= picked <= len(lst):
            raise InvariantViolation(
                "fusecache",
                f"list {index}",
                "pick count out of range",
                diff={
                    "topick": {
                        "expected": f"0..{len(lst)}",
                        "actual": picked,
                    }
                },
            )
    total = sum(len(lst) for lst in lists)
    expected_selected = min(n, total)
    if result.selected != expected_selected:
        raise InvariantViolation(
            "fusecache",
            f"k={len(lists)}, n={n}",
            "selected-count mismatch",
            diff={
                "selected": {
                    "expected": expected_selected,
                    "actual": result.selected,
                }
            },
        )
    chosen = selected_multiset(lists, result.topick)
    reference = fusecache_oracle(lists, n)
    if chosen != reference:
        divergence = next(
            (
                index
                for index, (got, want) in enumerate(zip(chosen, reference))
                if got != want
            ),
            min(len(chosen), len(reference)),
        )
        raise InvariantViolation(
            "fusecache",
            f"k={len(lists)}, n={n}",
            f"selected multiset diverges from the oracle at rank "
            f"{divergence}",
            diff={
                "timestamp_at_rank": {
                    "expected": reference[divergence]
                    if divergence < len(reference)
                    else None,
                    "actual": chosen[divergence]
                    if divergence < len(chosen)
                    else None,
                }
            },
        )
    return result
