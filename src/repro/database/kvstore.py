"""The persistent key-value store behind the cache tier.

Holds the authoritative copy of every KV pair (the paper's dataset is
~190 M pairs / ~50 GB on ardb+RocksDB; simulations scale this down).  Reads
never miss -- persistence is the point -- and the store counts accesses so
experiments can report database load.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.errors import ConfigurationError


class BackingStore:
    """Authoritative KV store: key -> (value, value_size)."""

    def __init__(self, records: Mapping[str, tuple[Any, int]] | None = None) -> None:
        self._records: dict[str, tuple[Any, int]] = dict(records or {})
        self.reads = 0
        self.writes = 0

    @classmethod
    def from_sizes(cls, sizes: Mapping[str, int]) -> "BackingStore":
        """Build a store whose values are opaque, with declared sizes."""
        return cls({key: (None, size) for key, size in sizes.items()})

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> Iterable[str]:
        """All stored keys."""
        return self._records.keys()

    def get(self, key: str) -> tuple[Any, int]:
        """Read ``(value, value_size)``; raises ``KeyError`` if absent."""
        self.reads += 1
        return self._records[key]

    def value_size(self, key: str) -> int:
        """Declared value size without counting a read."""
        return self._records[key][1]

    def put(self, key: str, value: Any, value_size: int) -> None:
        """Insert or overwrite a record."""
        if value_size < 0:
            raise ConfigurationError(
                f"value_size must be non-negative, got {value_size}"
            )
        self.writes += 1
        self._records[key] = (value, value_size)

    def total_bytes(self) -> int:
        """Sum of key and value bytes across all records."""
        return sum(
            len(key) + size for key, (_, size) in self._records.items()
        )
