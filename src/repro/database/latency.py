"""Load-dependent database latency.

The paper's database handles ``r_DB`` ~ 4,000 req/s "before the latency
rises abruptly" (Section V-A).  We reproduce that knee with an open M/M/1
queue inside capacity and an explicit backlog outside it: overload seconds
accumulate a queue that must drain before latency recovers, which is what
stretches the baseline's restoration time to many minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class MM1LatencyModel:
    """Mean response time of an M/M/1 queue with a utilisation guard.

    Parameters
    ----------
    service_time_s:
        Mean service time per request (1/mu).
    max_utilisation:
        Utilisation at which the analytic formula is clamped; beyond this
        the caller should account for backlog explicitly.
    """

    service_time_s: float
    max_utilisation: float = 0.97

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise ConfigurationError("service_time_s must be positive")
        if not 0.0 < self.max_utilisation < 1.0:
            raise ConfigurationError("max_utilisation must be in (0, 1)")

    def mean_latency(self, utilisation: float) -> float:
        """Mean sojourn time ``s / (1 - rho)`` with ``rho`` clamped."""
        rho = min(max(utilisation, 0.0), self.max_utilisation)
        return self.service_time_s / (1.0 - rho)


class DatabaseTier:
    """The storage tier as seen by the web servers.

    Combines a :class:`~repro.database.kvstore.BackingStore` with a
    capacity-``r_db`` latency model.  The simulator calls
    :meth:`observe_second` once per simulated second with the miss load;
    the returned mean latency is then used to sample per-request response
    times for that second.

    Parameters
    ----------
    store:
        The authoritative KV records.
    capacity_rps:
        ``r_DB``: sustainable requests/second before the latency knee.
    service_time_s:
        Mean per-request service time when idle (RocksDB point read plus a
        network hop; the paper's stable RT is ~5 ms end to end).
    """

    def __init__(
        self,
        store,
        capacity_rps: float,
        service_time_s: float = 0.004,
        max_utilisation: float = 0.97,
    ) -> None:
        if capacity_rps <= 0:
            raise ConfigurationError("capacity_rps must be positive")
        self.store = store
        self.capacity_rps = capacity_rps
        self.model = MM1LatencyModel(service_time_s, max_utilisation)
        self.backlog_requests = 0.0
        self.seconds_observed = 0
        self.overloaded_seconds = 0

    def get(self, key: str):
        """Read ``(value, value_size)`` from the backing store."""
        return self.store.get(key)

    def observe_second(self, miss_rps: float) -> float:
        """Advance the queue by one second under ``miss_rps`` arrivals.

        Returns the mean database latency (seconds) for requests issued in
        this second: the M/M/1 sojourn time within capacity, plus the time
        needed to drain any backlog accumulated during overload.
        """
        if miss_rps < 0:
            raise ConfigurationError("miss_rps must be non-negative")
        self.seconds_observed += 1
        offered = miss_rps + self.backlog_requests
        utilisation = offered / self.capacity_rps
        if utilisation > 1.0:
            self.overloaded_seconds += 1
        # Queue dynamics: up to capacity_rps requests drain this second.
        self.backlog_requests = max(0.0, offered - self.capacity_rps)
        queueing_delay = self.backlog_requests / self.capacity_rps
        return self.model.mean_latency(utilisation) + queueing_delay

    def reset(self) -> None:
        """Clear queue state between experiments."""
        self.backlog_requests = 0.0
        self.seconds_observed = 0
        self.overloaded_seconds = 0
