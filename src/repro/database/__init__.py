"""The persistent storage tier (ardb/RocksDB in the paper's testbed).

The database is the application's bottleneck: it serves Memcached misses
at a capacity of ``r_DB`` requests/second, beyond which latency "rises
abruptly" (Section V-A).  Post-scaling degradation is precisely a burst of
misses pushing the database past this knee, so the reproduction models the
tier as a backing key-value store plus an M/M/1-with-backlog latency
model.
"""

from repro.database.kvstore import BackingStore
from repro.database.latency import DatabaseTier, MM1LatencyModel

__all__ = ["BackingStore", "DatabaseTier", "MM1LatencyModel"]
