"""SHARDS: spatially-sampled stack distances (Waldspurger et al., FAST'15).

The paper lists SHARDS alongside MIMIR as practical miss-ratio-curve
machinery (Section VI).  SHARDS profiles only the keys whose hash falls
under a threshold -- a fixed spatial sample of rate ``R`` -- computes
*exact* stack distances within the sample, and rescales: a sampled
distance ``d`` estimates a full-trace distance ``d / R``, and each
sampled reference stands for ``1 / R`` references.  Memory and time drop
by ``R`` while the curve stays accurate, because spatial sampling
preserves reuse structure.

Used here as an ablation against the exact Fenwick profiler and MIMIR
(see ``benchmarks/bench_ablation_profilers.py``).
"""

from __future__ import annotations

from repro.cache_analysis.stack_distance import (
    INFINITE,
    StackDistanceProfiler,
)
from repro.errors import ConfigurationError
from repro.hashing.hashutil import hash64

_MODULUS = 1 << 24


class ShardsProfiler:
    """Fixed-rate SHARDS profiler.

    Parameters
    ----------
    sample_rate:
        Fraction of the key space to profile (``R``), e.g. 0.01.
    capacity:
        Upper bound on *sampled* references (sizes the inner exact
        profiler); roughly ``R x`` the trace length you plan to feed.
    """

    def __init__(self, sample_rate: float, capacity: int) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.sample_rate = sample_rate
        self._threshold = int(sample_rate * _MODULUS)
        self._inner = StackDistanceProfiler(capacity)
        self.requests_seen = 0
        self.sampled_requests = 0

    def is_sampled(self, key: str) -> bool:
        """Whether ``key`` belongs to the spatial sample."""
        return hash64(key) % _MODULUS < self._threshold

    @property
    def effective_rate(self) -> float:
        """Realised sampling rate over the fed trace."""
        if self.requests_seen == 0:
            return 0.0
        return self.sampled_requests / self.requests_seen

    def record(self, key: str) -> float | None:
        """Ingest one request.

        Returns the *rescaled* stack-distance estimate for sampled
        reuses, ``float('inf')`` for sampled cold accesses, and ``None``
        for keys outside the sample.
        """
        self.requests_seen += 1
        if not self.is_sampled(key):
            return None
        self.sampled_requests += 1
        distance = self._inner.record(key)
        if distance == INFINITE:
            return float("inf")
        return distance / self.sample_rate

    def histogram(self) -> tuple[list[int], int]:
        """Rescaled distance histogram plus estimated cold misses.

        Distances stretch by ``1/R`` -- the *key-space* sampling rate,
        since a sampled distance counts sampled distinct keys.  Counts
        are weighted by the realised *request* fraction instead: on
        skewed workloads the sampled keys' share of requests deviates
        wildly from ``R`` (one hot key in or out of the sample moves
        percents of traffic), and normalising by the realised share is
        the SHARDS-adj correction that keeps hit-rate totals unbiased.
        """
        sampled_histogram, sampled_cold = self._inner.histogram()
        if self.sampled_requests > 0:
            weight = self.requests_seen / self.sampled_requests
        else:
            weight = 1.0 / self.sample_rate
        distance_scale = 1.0 / self.sample_rate
        histogram: list[int] = []
        for distance, count in enumerate(sampled_histogram):
            if count == 0:
                continue
            scaled = int(distance * distance_scale)
            if scaled >= len(histogram):
                histogram.extend([0] * (scaled - len(histogram) + 1))
            histogram[scaled] += round(count * weight)
        return histogram, round(sampled_cold * weight)
