"""MIMIR-style approximate stack distances (the implementation ElMem uses).

MIMIR (Saemundsson et al., SoCC'14) buckets the LRU stack into ``B``
aging groups instead of tracking exact positions.  A hit on a key in
bucket ``j`` estimates its stack distance as the total population of the
hotter buckets plus half its own bucket; the key then moves to the hottest
bucket.  When the hottest bucket grows past ``tracked/B`` the buckets age
by one step (the ROUNDER scheme).  Estimation is O(B) per request with
bounded relative error, versus O(log M) for the exact Fenwick profiler --
this is why the paper's AutoScaler can re-profile every minute in under a
second.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError

DEFAULT_BUCKETS = 128


class MimirProfiler:
    """Streaming approximate stack-distance profiler (ROUNDER variant).

    Parameters
    ----------
    buckets:
        Number of aging buckets ``B``; error shrinks roughly as ``1/B``.
    """

    def __init__(self, buckets: int = DEFAULT_BUCKETS) -> None:
        if buckets < 2:
            raise ConfigurationError(f"need at least 2 buckets, got {buckets}")
        self.buckets = buckets
        # Monotonically increasing epoch of the hottest bucket; per-key tag
        # records which epoch the key last landed in.
        self._epoch = 0
        self._bucket_counts: OrderedDict[int, int] = OrderedDict({0: 0})
        self._key_epoch: dict[str, int] = {}
        self.requests_seen = 0
        self.cold_misses = 0
        self._distances: list[float] = []

    @property
    def tracked_keys(self) -> int:
        """Distinct keys currently tracked."""
        return len(self._key_epoch)

    def record(self, key: str) -> float:
        """Ingest one request; return its estimated stack distance.

        First accesses return ``float('inf')`` and are counted as cold
        misses.
        """
        self.requests_seen += 1
        previous = self._key_epoch.get(key)
        if previous is None:
            distance = float("inf")
            self.cold_misses += 1
        else:
            hotter = 0
            own = 0
            for epoch, count in reversed(self._bucket_counts.items()):
                if epoch > previous:
                    hotter += count
                elif epoch == previous:
                    own = count
                    break
                else:  # pragma: no cover - epochs are visited in order
                    break
            distance = hotter + own / 2.0
            self._distances.append(distance)
            self._bucket_counts[previous] -= 1
        self._key_epoch[key] = self._epoch
        self._bucket_counts[self._epoch] += 1
        self._maybe_age()
        return distance

    def _maybe_age(self) -> None:
        """Open a new hottest bucket when the current one is full."""
        per_bucket = max(1, len(self._key_epoch) // self.buckets)
        if self._bucket_counts[self._epoch] < per_bucket:
            return
        self._epoch += 1
        self._bucket_counts[self._epoch] = 0
        if len(self._bucket_counts) > self.buckets:
            self._merge_oldest()

    def _merge_oldest(self) -> None:
        """Fold the two coldest buckets together to cap bucket count."""
        iterator = iter(self._bucket_counts.items())
        oldest_epoch, oldest_count = next(iterator)
        second_epoch, second_count = next(iterator)
        del self._bucket_counts[oldest_epoch]
        self._bucket_counts[second_epoch] = oldest_count + second_count
        # Re-tag is deferred: keys tagged with the dead epoch are treated
        # as belonging to the merged bucket on their next access.
        self._merged_floor = second_epoch
        for key, epoch in self._key_epoch.items():
            if epoch == oldest_epoch:
                self._key_epoch[key] = second_epoch

    def distances(self) -> list[float]:
        """All finite estimated distances recorded so far."""
        return list(self._distances)

    def histogram(self) -> tuple[list[int], int]:
        """Integer-binned histogram of estimates plus the cold-miss count.

        Suitable for :class:`repro.cache_analysis.mrc.HitRateCurve`.
        """
        histogram: list[int] = []
        for distance in self._distances:
            bin_index = int(distance)
            if bin_index >= len(histogram):
                histogram.extend([0] * (bin_index - len(histogram) + 1))
            histogram[bin_index] += 1
        return histogram, self.cold_misses
