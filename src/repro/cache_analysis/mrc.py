"""Hit-rate (miss-ratio) curves and memory sizing.

Turns a stack-distance histogram into the hit rate an LRU cache of any
capacity would have achieved on the profiled trace, then inverts it: the
smallest capacity reaching a target hit rate ``p_min``.  The AutoScaler
normalises that capacity by per-node memory to get a node count
(Section III-B).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


class HitRateCurve:
    """Hit rate as a function of cache capacity in *items*.

    Parameters
    ----------
    histogram:
        ``histogram[d]`` = number of requests with stack distance ``d``.
    cold_misses:
        Requests with infinite distance (first accesses); these miss at
        every capacity.
    """

    def __init__(self, histogram: Sequence[int], cold_misses: int) -> None:
        self._histogram = np.asarray(histogram, dtype=np.int64)
        if (self._histogram < 0).any():
            raise ConfigurationError("histogram counts must be non-negative")
        if cold_misses < 0:
            raise ConfigurationError("cold_misses must be non-negative")
        self.cold_misses = int(cold_misses)
        self._cumulative = np.concatenate(
            ([0], np.cumsum(self._histogram))
        )
        self.total_requests = int(self._cumulative[-1]) + self.cold_misses

    @classmethod
    def from_distances(cls, distances: Iterable[float]) -> "HitRateCurve":
        """Build a curve from raw (possibly infinite/negative) distances."""
        histogram: list[int] = []
        cold = 0
        for distance in distances:
            if distance == float("inf") or distance < 0:
                cold += 1
                continue
            bin_index = int(distance)
            if bin_index >= len(histogram):
                histogram.extend([0] * (bin_index - len(histogram) + 1))
            histogram[bin_index] += 1
        return cls(histogram, cold)

    @property
    def max_capacity(self) -> int:
        """Capacity beyond which the hit rate no longer improves."""
        return len(self._histogram)

    def hits_at(self, capacity_items: int) -> int:
        """Requests that hit in an LRU cache of ``capacity_items``."""
        if capacity_items <= 0:
            return 0
        capacity_items = min(capacity_items, self.max_capacity)
        return int(self._cumulative[capacity_items])

    def hit_rate(self, capacity_items: int) -> float:
        """Hit rate at ``capacity_items``; 0.0 for an empty trace."""
        if self.total_requests == 0:
            return 0.0
        return self.hits_at(capacity_items) / self.total_requests

    @property
    def max_hit_rate(self) -> float:
        """Hit rate with unbounded capacity (only cold misses remain)."""
        return self.hit_rate(self.max_capacity)

    def required_items(self, target_hit_rate: float) -> int | None:
        """Smallest capacity (items) whose hit rate >= ``target_hit_rate``.

        Returns ``None`` when the target exceeds :attr:`max_hit_rate` --
        i.e. no cache size can reach it because of cold misses.
        """
        if not 0.0 <= target_hit_rate <= 1.0:
            raise ConfigurationError(
                f"target hit rate must be in [0, 1], got {target_hit_rate}"
            )
        if target_hit_rate == 0.0:
            return 0
        if self.total_requests == 0 or target_hit_rate > self.max_hit_rate:
            return None
        needed_hits = target_hit_rate * self.total_requests
        index = int(
            np.searchsorted(self._cumulative, needed_hits, side="left")
        )
        return min(index, self.max_capacity)

    def curve(self, max_items: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """``(capacities, hit_rates)`` arrays for plotting/reporting."""
        limit = self.max_capacity if max_items is None else max_items
        capacities = np.arange(limit + 1)
        hits = np.array([self.hits_at(int(c)) for c in capacities])
        denominator = max(1, self.total_requests)
        return capacities, hits / denominator


def memory_for_hit_rate(
    curve: HitRateCurve,
    target_hit_rate: float,
    bytes_per_item: float,
) -> int | None:
    """Memory (bytes) needed to reach ``target_hit_rate``.

    Converts the item-count capacity to bytes using the average per-item
    footprint (key + value + item overhead, chunk-rounded).  ``None`` when
    the target is unreachable.
    """
    if bytes_per_item <= 0:
        raise ConfigurationError(
            f"bytes_per_item must be positive, got {bytes_per_item}"
        )
    items = curve.required_items(target_hit_rate)
    if items is None:
        return None
    return int(np.ceil(items * bytes_per_item))


def hit_rate_table(
    curve: HitRateCurve, bytes_per_item: float
) -> list[tuple[int, int | None]]:
    """Memory needed for every integer hit-rate percentage (paper III-B).

    Returns ``[(percent, bytes or None), ...]`` for 1..99 -- the exact
    artifact the paper's AutoScaler recomputes each minute with MIMIR.
    """
    table: list[tuple[int, int | None]] = []
    for percent in range(1, 100):
        table.append(
            (percent, memory_for_hit_rate(curve, percent / 100.0, bytes_per_item))
        )
    return table
