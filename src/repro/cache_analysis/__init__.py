"""Hit-rate-curve machinery (Section III-B of the paper).

The AutoScaler sizes the Memcached tier by asking: *how much memory is
needed to reach hit rate p_min over the recent request trace?*  That
question is answered with **stack distances**: the stack distance of a
request is the number of distinct keys touched since the previous request
to the same key, so an LRU cache of capacity ``C`` hits exactly the
requests with stack distance ``< C``.  One pass therefore yields the hit
rate for *every* cache size simultaneously.

Two implementations are provided:

- :mod:`repro.cache_analysis.stack_distance` -- exact distances via a
  Fenwick tree, ``O(M log M)`` for an ``M``-request trace;
- :mod:`repro.cache_analysis.mimir` -- the bucketed approximation of the
  MIMIR system the paper says ElMem uses, ``O(M)`` with bounded error.
"""

from repro.cache_analysis.mimir import MimirProfiler
from repro.cache_analysis.mrc import HitRateCurve, memory_for_hit_rate
from repro.cache_analysis.shards import ShardsProfiler
from repro.cache_analysis.stack_distance import (
    StackDistanceProfiler,
    stack_distances,
)

__all__ = [
    "HitRateCurve",
    "MimirProfiler",
    "ShardsProfiler",
    "StackDistanceProfiler",
    "memory_for_hit_rate",
    "stack_distances",
]
