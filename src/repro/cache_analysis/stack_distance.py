"""Exact stack-distance computation via a Fenwick (binary indexed) tree.

The classic Mattson one-pass algorithm: remember each key's previous
access position; the stack distance is the number of *distinct* keys seen
since then, counted with a Fenwick tree over access positions in
``O(log M)`` per request.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

INFINITE = -1
"""Stack distance reported for a key's first (cold) access."""


class _FenwickTree:
    """Prefix-sum tree over request positions."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in positions ``[0, index]``."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries in positions ``[lo, hi]``."""
        if lo > hi:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total


class StackDistanceProfiler:
    """Streaming exact stack distances for a bounded-length trace window.

    Parameters
    ----------
    capacity:
        Maximum number of requests the profiler will ingest; the Fenwick
        tree is sized once for this bound.  The AutoScaler recreates a
        profiler per monitoring window, matching the paper's "recent
        history of requests" design.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._tree = _FenwickTree(capacity)
        self._last_position: dict[str, int] = {}
        self._clock = 0
        self._histogram: list[int] = []
        self.cold_misses = 0

    @property
    def requests_seen(self) -> int:
        """Requests ingested so far."""
        return self._clock

    @property
    def unique_keys(self) -> int:
        """Distinct keys observed so far."""
        return len(self._last_position)

    def record(self, key: str) -> int:
        """Ingest one request and return its stack distance.

        Returns :data:`INFINITE` for a first access.  Raises
        :class:`OverflowError` past the construction-time capacity.
        """
        if self._clock >= self.capacity:
            raise OverflowError(
                f"profiler capacity {self.capacity} exhausted"
            )
        position = self._clock
        self._clock += 1
        previous = self._last_position.get(key)
        if previous is None:
            distance = INFINITE
            self.cold_misses += 1
        else:
            # Distinct keys touched strictly between the two accesses.
            distance = self._tree.range_sum(previous + 1, position - 1)
            self._tree.add(previous, -1)
            if distance >= len(self._histogram):
                self._histogram.extend(
                    [0] * (distance - len(self._histogram) + 1)
                )
            self._histogram[distance] += 1
        self._tree.add(position, 1)
        self._last_position[key] = position
        return distance

    def histogram(self) -> tuple[list[int], int]:
        """Distance histogram plus cold-miss count, for hit-rate curves."""
        return list(self._histogram), self.cold_misses


def stack_distances(trace: Iterable[str]) -> Iterator[int]:
    """Yield the exact stack distance of every request in ``trace``."""
    trace = list(trace)
    profiler = StackDistanceProfiler(max(1, len(trace)))
    for key in trace:
        yield profiler.record(key)


def naive_stack_distances(trace: Iterable[str]) -> Iterator[int]:
    """Quadratic reference implementation used by the property tests."""
    seen: list[str] = []
    for key in trace:
        if key in seen:
            index = seen.index(key)
            # Keys above `key` on the LRU stack are the distinct keys
            # touched since its last access.
            yield len(seen) - index - 1
            seen.pop(index)
        else:
            yield INFINITE
        seen.append(key)


def distance_histogram(
    distances: Iterable[int], max_distance: int | None = None
) -> tuple[list[int], int]:
    """Aggregate distances into ``(histogram, cold_misses)``.

    ``histogram[d]`` counts requests with stack distance ``d``;  cold
    (infinite) accesses are returned separately.  ``max_distance`` bounds
    the histogram length; deeper accesses are clamped into the last bin + 1
    semantics by extending the list as needed when it is ``None``.
    """
    histogram: list[int] = [] if max_distance is None else [0] * (max_distance + 1)
    cold = 0
    for distance in distances:
        if distance == INFINITE:
            cold += 1
            continue
        if max_distance is not None:
            distance = min(distance, max_distance)
        if distance >= len(histogram):
            histogram.extend([0] * (distance - len(histogram) + 1))
        histogram[distance] += 1
    return histogram, cold


def theoretical_tree_depth(requests: int) -> int:
    """Depth of the Fenwick tree for a window of ``requests`` accesses."""
    return max(1, math.ceil(math.log2(requests + 1)))
