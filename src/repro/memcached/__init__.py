"""In-process model of Memcached (Section II-A of the paper).

The model reproduces the parts of Memcached 1.4 that ElMem's migration
machinery manipulates:

- memory divided into 1 MB **pages**, grouped into **slab classes**, each
  class storing items of a bounded size range in fixed-size chunks;
- within a class, items kept on a doubly-linked list in **MRU order**, with
  O(1) LRU eviction by deleting the list tail;
- per-item most-recently-used **access timestamps**;
- the paper's two custom commands: a *timestamp dump* of a slab's MRU list
  and a *batch import* that installs migrated items while evicting colder
  local items (Section V-A1).
"""

from repro.memcached.cluster import MemcachedCluster
from repro.memcached.items import ITEM_OVERHEAD, Item
from repro.memcached.lru import MRUList
from repro.memcached.node import MemcachedNode, NodeStats
from repro.memcached.slab import (
    PAGE_SIZE,
    SlabAllocator,
    SlabClass,
    size_class_table,
)

__all__ = [
    "ITEM_OVERHEAD",
    "Item",
    "MRUList",
    "MemcachedCluster",
    "MemcachedNode",
    "NodeStats",
    "PAGE_SIZE",
    "SlabAllocator",
    "SlabClass",
    "size_class_table",
]
