"""The distributed Memcached tier: a pool of nodes plus client-side routing.

The cluster mirrors the paper's deployment model: clients (the web tier)
hash keys onto the *active* membership via consistent hashing; Memcached
nodes themselves are unaware of key ownership.  Nodes can be deactivated
(removed from the ring) without being destroyed, which is what lets
CacheScale keep reading from retiring nodes as a "secondary cache" and what
lets ElMem migrate data off a node before turning it off.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.errors import MembershipError
from repro.hashing.ketama import DEFAULT_VNODES, ConsistentHashRing
from repro.memcached.node import MemcachedNode, NodeStats


class MemcachedCluster:
    """A pool of :class:`MemcachedNode` with ketama routing.

    Parameters
    ----------
    node_names:
        Names of the initially active nodes.
    memory_per_node:
        Cache bytes per node (the paper uses 4 GB VMs; simulations scale
        this down).
    vnodes:
        Virtual points per node on the hash ring.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` handed to
        every node this cluster provisions, so command/eviction counters
        aggregate across membership changes.
    """

    def __init__(
        self,
        node_names: Iterable[str],
        memory_per_node: int,
        vnodes: int = DEFAULT_VNODES,
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        metrics: Any | None = None,
    ) -> None:
        self.memory_per_node = memory_per_node
        self.vnodes = vnodes
        self._min_chunk = min_chunk
        self._growth_factor = growth_factor
        self._metrics = metrics
        self.nodes: dict[str, MemcachedNode] = {}
        self.ring = ConsistentHashRing(vnodes=vnodes)
        # Per-key routing overrides installed by the load rebalancer;
        # consulted before the hash ring.  Entries pointing at nodes that
        # leave the membership are dropped automatically.
        self._remap: dict[str, str] = {}
        for name in node_names:
            self.provision(name)
            self.activate(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def active_members(self) -> frozenset[str]:
        """Names of nodes currently on the hash ring."""
        return self.ring.members

    @property
    def active_nodes(self) -> list[MemcachedNode]:
        """Node objects currently on the ring, sorted by name."""
        return [self.nodes[name] for name in sorted(self.ring.members)]

    def provision(self, name: str) -> MemcachedNode:
        """Create a cold node in the pool (not yet on the ring)."""
        if name in self.nodes:
            raise MembershipError(f"node {name!r} already provisioned")
        node = MemcachedNode(
            name,
            self.memory_per_node,
            min_chunk=self._min_chunk,
            growth_factor=self._growth_factor,
            metrics=self._metrics,
        )
        self.nodes[name] = node
        return node

    def activate(self, name: str) -> None:
        """Put a provisioned node onto the hash ring."""
        if name not in self.nodes:
            raise MembershipError(f"node {name!r} not provisioned")
        self.ring.add_node(name)

    def deactivate(self, name: str) -> None:
        """Take a node off the ring; its data stays until :meth:`destroy`."""
        self.ring.remove_node(name)
        self._drop_stale_remaps()

    def destroy(self, name: str) -> None:
        """Flush and delete a node from the pool (the VM is turned off)."""
        node = self.nodes.pop(name, None)
        if node is None:
            raise MembershipError(f"node {name!r} not provisioned")
        if name in self.ring:
            self.ring.remove_node(name)
        node.flush_all()

    def set_membership(self, names: Iterable[str]) -> None:
        """Reset the ring to exactly ``names`` (all must be provisioned)."""
        names = list(names)
        missing = [name for name in names if name not in self.nodes]
        if missing:
            raise MembershipError(f"nodes not provisioned: {missing}")
        self.ring.set_members(names)
        self._drop_stale_remaps()

    # ------------------------------------------------------------------
    # Routing overrides (load rebalancing)
    # ------------------------------------------------------------------

    def set_remap(self, key: str, node: str) -> None:
        """Route ``key`` to ``node`` instead of its hash owner."""
        if node not in self.ring:
            raise MembershipError(f"remap target {node!r} not active")
        if self.ring.node_for_key(key) == node:
            self._remap.pop(key, None)
        else:
            self._remap[key] = node

    def clear_remap(self, key: str) -> None:
        """Remove a routing override if present."""
        self._remap.pop(key, None)

    def clear_all_remaps(self) -> None:
        """Drop every routing override."""
        self._remap.clear()

    @property
    def remap_count(self) -> int:
        """Number of active routing overrides."""
        return len(self._remap)

    def _drop_stale_remaps(self) -> None:
        members = self.ring.members
        stale = [
            key
            for key, node in self._remap.items()
            if node not in members
        ]
        for key in stale:
            del self._remap[key]

    def ring_for(self, members: Iterable[str]) -> ConsistentHashRing:
        """A hypothetical ring over ``members`` with this cluster's vnodes.

        Used during migration planning, where retiring-node Agents hash
        their keys against the *retained* membership (Section III-D1).
        """
        return ConsistentHashRing(members, vnodes=self.vnodes)

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def route(self, key: str) -> str:
        """Name of the active node responsible for ``key``.

        A rebalancer override takes precedence over the hash ring.
        """
        if self._remap:
            override = self._remap.get(key)
            if override is not None:
                return override
        return self.ring.node_for_key(key)

    def route_many(self, keys: list[str]) -> list[str]:
        """Owning node per key, in order (batched :meth:`route`).

        Uses the ring's cached batch lookup; rebalancer overrides are
        honoured per key exactly as :meth:`route` does.
        """
        if not self._remap:
            return self.ring.lookup_many(keys)
        remap_get = self._remap.get
        lookup = self.ring.node_for_key
        owners: list[str] = []
        for key in keys:
            override = remap_get(key)
            owners.append(override if override is not None else lookup(key))
        return owners

    def get(self, key: str, now: float) -> Any | None:
        """Routed ``get``; ``None`` on a miss."""
        return self.nodes[self.route(key)].get(key, now)

    def set(self, key: str, value: Any, value_size: int, now: float) -> bool:
        """Routed ``set``."""
        return self.nodes[self.route(key)].set(key, value, value_size, now)

    def delete(self, key: str) -> bool:
        """Routed ``delete``."""
        return self.nodes[self.route(key)].delete(key)

    def get_many(
        self, keys: Iterable[str], now: float
    ) -> list[Any | None]:
        """Batched routed ``get``: one value (or ``None``) per key.

        Keys are routed in one batch and grouped per owning node, so the
        per-node loop amortizes routing, stats, and metric updates.  Per-
        node operation order follows request order, which keeps the cache
        state bit-identical to per-op :meth:`get` calls.
        """
        keys = list(keys)
        owners = self.route_many(keys)
        groups: dict[str, list[str]] = {}
        for key, owner in zip(keys, owners):
            bucket = groups.get(owner)
            if bucket is None:
                groups[owner] = [key]
            else:
                bucket.append(key)
        nodes = self.nodes
        if len(groups) == 1:
            return nodes[owners[0]].get_many(keys, now)
        cursors = {
            owner: iter(nodes[owner].get_many(bucket, now))
            for owner, bucket in groups.items()
        }
        return [next(cursors[owner]) for owner in owners]

    def set_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float
    ) -> int:
        """Batched routed ``set`` of ``(key, value, value_size)`` triples;
        returns how many stored."""
        entries = list(entries)
        owners = self.route_many([entry[0] for entry in entries])
        groups: dict[str, list[tuple[str, Any, int]]] = {}
        for entry, owner in zip(entries, owners):
            groups.setdefault(owner, []).append(entry)
        return sum(
            self.nodes[owner].set_many(batch, now)
            for owner, batch in groups.items()
        )

    def delete_many(self, keys: Iterable[str]) -> int:
        """Batched routed ``delete``; returns how many keys existed."""
        keys = list(keys)
        owners = self.route_many(keys)
        groups: dict[str, list[str]] = {}
        for key, owner in zip(keys, owners):
            groups.setdefault(owner, []).append(key)
        return sum(
            self.nodes[owner].delete_many(batch)
            for owner, batch in groups.items()
        )

    def multiget(
        self, keys: Iterable[str], now: float
    ) -> tuple[dict[str, Any], list[str]]:
        """The web tier's multi-get: returns ``(hits, missed_keys)``.

        Served through the batched :meth:`get_many` fast path; hit/miss
        composition and ordering match the historical per-key loop.
        """
        keys = list(keys)
        hits: dict[str, Any] = {}
        misses: list[str] = []
        for key, value in zip(keys, self.get_many(keys, now)):
            if value is None:
                misses.append(key)
            else:
                hits[key] = value
        return hits, misses

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_items(self) -> int:
        """Items cached across active nodes."""
        return sum(node.curr_items for node in self.active_nodes)

    def total_used_bytes(self) -> int:
        """Chunk-rounded bytes in use across active nodes."""
        return sum(node.used_bytes for node in self.active_nodes)

    def total_capacity_bytes(self) -> int:
        """Aggregate cache memory of the active membership."""
        return self.memory_per_node * len(self.ring)

    def aggregate_stats(self) -> NodeStats:
        """Sum of per-node counters over the whole pool."""
        total = NodeStats()
        for node in self.nodes.values():
            stats = node.stats
            total.get_hits += stats.get_hits
            total.get_misses += stats.get_misses
            total.sets += stats.sets
            total.deletes += stats.deletes
            total.evictions += stats.evictions
            total.expired += stats.expired
            total.too_large += stats.too_large
            total.imported += stats.imported
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemcachedCluster(active={sorted(self.ring.members)}, "
            f"pool={len(self.nodes)})"
        )
