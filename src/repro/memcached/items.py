"""The cached item record.

Items model Memcached's ``item`` struct: key, opaque value, last-access
(MRU) timestamp, and the intrusive list pointers that place the item on its
slab class's MRU list.  Values are carried as opaque Python objects with an
explicit ``value_size`` so the simulator can cache multi-kilobyte "values"
without allocating real buffers.
"""

from __future__ import annotations

from typing import Any

# Per-item metadata overhead in bytes, approximating Memcached's item header
# (struct _stritem) plus CAS and the key's trailing NUL.
ITEM_OVERHEAD = 56


class Item:
    """A single cached key/value pair.

    Attributes
    ----------
    key:
        The item's key (at most 250 bytes in real Memcached).
    value:
        Opaque cached payload; the simulator usually stores ``None``.
    value_size:
        Declared size of the value in bytes; drives slab-class selection.
    last_access:
        MRU timestamp (simulation seconds).  This is the "hotness" that
        FuseCache compares.
    created_at:
        Timestamp of the original ``set``.
    """

    __slots__ = (
        "key",
        "value",
        "value_size",
        "last_access",
        "created_at",
        "expires_at",
        "cas_id",
        "slab_class_id",
        "prev",
        "next",
    )

    def __init__(
        self,
        key: str,
        value: Any,
        value_size: int,
        now: float,
        exptime: float = 0.0,
    ) -> None:
        self.key = key
        self.value = value
        self.value_size = value_size
        self.last_access = now
        self.created_at = now
        # 0 means "never expires", matching Memcached's exptime=0.
        self.expires_at = now + exptime if exptime > 0 else 0.0
        self.cas_id = 0
        self.slab_class_id: int = -1
        self.prev: Item | None = None
        self.next: Item | None = None

    @property
    def total_size(self) -> int:
        """Bytes the item occupies before chunk rounding."""
        return ITEM_OVERHEAD + len(self.key) + self.value_size

    def touch(self, now: float) -> None:
        """Record an access at time ``now`` (monotonic within a node)."""
        self.last_access = now

    def is_expired(self, now: float) -> bool:
        """True if the item carries a TTL that has lapsed by ``now``."""
        return self.expires_at > 0.0 and now >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Item(key={self.key!r}, value_size={self.value_size}, "
            f"last_access={self.last_access:.3f})"
        )
