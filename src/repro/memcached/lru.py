"""Intrusive doubly-linked list in most-recently-used order.

Memcached keeps each slab class's items on such a list: a ``get`` moves the
item to the head, and eviction deletes the tail in O(1) (Section II-A).
The list is *intrusive* -- pointers live on the :class:`~repro.memcached.
items.Item` itself -- so membership moves never allocate.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.memcached.items import Item


class MRUList:
    """Doubly-linked list of items, head = most recently used."""

    def __init__(self) -> None:
        self._head: Item | None = None
        self._tail: Item | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def head(self) -> Item | None:
        """The most recently used item, or ``None`` if empty."""
        return self._head

    @property
    def tail(self) -> Item | None:
        """The least recently used item, or ``None`` if empty."""
        return self._tail

    def push_front(self, item: Item) -> None:
        """Insert ``item`` at the MRU head.  ``item`` must be unlinked."""
        item.prev = None
        item.next = self._head
        if self._head is not None:
            self._head.prev = item
        self._head = item
        if self._tail is None:
            self._tail = item
        self._size += 1

    def remove(self, item: Item) -> None:
        """Unlink ``item`` from the list in O(1)."""
        if item.prev is not None:
            item.prev.next = item.next
        else:
            self._head = item.next
        if item.next is not None:
            item.next.prev = item.prev
        else:
            self._tail = item.prev
        item.prev = None
        item.next = None
        self._size -= 1

    def move_to_front(self, item: Item) -> None:
        """Move an already-linked ``item`` to the MRU head."""
        if self._head is item:
            return
        self.remove(item)
        self.push_front(item)

    def pop_back(self) -> Item | None:
        """Remove and return the LRU tail, or ``None`` if empty."""
        victim = self._tail
        if victim is not None:
            self.remove(victim)
        return victim

    def insert_before(self, anchor: Item | None, item: Item) -> None:
        """Insert unlinked ``item`` immediately before ``anchor``.

        ``anchor=None`` appends at the tail.  Used by the timestamp-ordered
        batch import to splice migrated items at the right recency position.
        """
        if anchor is None:
            item.prev = self._tail
            item.next = None
            if self._tail is not None:
                self._tail.next = item
            self._tail = item
            if self._head is None:
                self._head = item
            self._size += 1
            return
        item.prev = anchor.prev
        item.next = anchor
        if anchor.prev is not None:
            anchor.prev.next = item
        else:
            self._head = item
        anchor.prev = item
        self._size += 1

    def __iter__(self) -> Iterator[Item]:
        """Iterate items from MRU head to LRU tail."""
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def iter_lru(self) -> Iterator[Item]:
        """Iterate items from LRU tail to MRU head."""
        node = self._tail
        while node is not None:
            yield node
            node = node.prev

    def median(self) -> Item | None:
        """Return the item at position ``len // 2`` in MRU order.

        ElMem's node-scoring step (Section III-C) compares exactly this
        median item's timestamp across nodes.
        """
        if self._size == 0:
            return None
        steps = self._size // 2
        node = self._head
        for _ in range(steps):
            assert node is not None
            node = node.next
        return node

    def timestamps(self) -> list[float]:
        """Dump ``last_access`` for every item in MRU order."""
        return [item.last_access for item in self]

    def is_sorted_desc(self) -> bool:
        """True when ``last_access`` is non-increasing head to tail.

        This is the precondition FuseCache's binary searches rely on; it
        holds under ``merge``-mode batch imports and is deliberately
        given up by ``prepend`` mode (the paper's implementation).
        """
        previous: float | None = None
        for item in self:
            if previous is not None and item.last_access > previous:
                return False
            previous = item.last_access
        return True

    def check_invariants(self) -> None:
        """Validate pointer structure; used by tests and debug builds.

        Raises :class:`~repro.errors.InvariantViolation` on corruption.
        The deeper per-node validation (hash-table agreement, slab
        accounting, timestamp order) lives in
        :mod:`repro.check.invariants`.
        """
        from repro.errors import InvariantViolation

        count = 0
        prev: Item | None = None
        node = self._head
        while node is not None:
            if node.prev is not prev:
                raise InvariantViolation(
                    "lru", "mru-list", "broken prev pointer"
                )
            prev = node
            node = node.next
            count += 1
        if prev is not self._tail:
            raise InvariantViolation(
                "lru", "mru-list", "tail does not match last node"
            )
        if count != self._size:
            raise InvariantViolation(
                "lru",
                "mru-list",
                "size counter disagrees with the walk",
                diff={"size": {"expected": self._size, "actual": count}},
            )
