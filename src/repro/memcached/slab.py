"""Slab memory allocator (Section II-A of the paper).

Memory is carved into 1 MB *pages*.  Pages are assigned on demand to *slab
classes*; class ``i`` splits its pages into fixed-size chunks sized by a
geometric growth factor, and every item whose total size rounds up to that
chunk size lives in class ``i``.  Each class owns an MRU list of its items;
the node evicts from a class's LRU tail when the class is full and no free
page remains.
"""

from __future__ import annotations

import bisect

from repro.errors import CapacityError, ConfigurationError
from repro.memcached.items import Item
from repro.memcached.lru import MRUList

PAGE_SIZE = 1 << 20
"""Bytes per slab page (1 MB, as in Memcached)."""

DEFAULT_MIN_CHUNK = 96
DEFAULT_GROWTH_FACTOR = 1.25


def size_class_table(
    min_chunk: int = DEFAULT_MIN_CHUNK,
    growth_factor: float = DEFAULT_GROWTH_FACTOR,
    max_chunk: int = PAGE_SIZE,
) -> list[int]:
    """Return the ascending chunk sizes for each slab class.

    Mirrors Memcached's ``slabs_init``: sizes grow geometrically from
    ``min_chunk`` by ``growth_factor``, 8-byte aligned, capped at one page.
    """
    if min_chunk <= 0:
        raise ConfigurationError(f"min_chunk must be positive, got {min_chunk}")
    if growth_factor <= 1.0:
        raise ConfigurationError(
            f"growth_factor must exceed 1.0, got {growth_factor}"
        )
    if max_chunk > PAGE_SIZE:
        raise ConfigurationError("max_chunk cannot exceed the page size")
    sizes: list[int] = []
    size = float(min_chunk)
    while size < max_chunk:
        aligned = int(-(-size // 8) * 8)
        if not sizes or aligned > sizes[-1]:
            sizes.append(aligned)
        size *= growth_factor
    if not sizes or sizes[-1] != max_chunk:
        sizes.append(max_chunk)
    return sizes


class SlabClass:
    """One slab class: a chunk size, its pages, and its MRU item list."""

    __slots__ = ("class_id", "chunk_size", "pages", "used_chunks", "mru")

    def __init__(self, class_id: int, chunk_size: int) -> None:
        self.class_id = class_id
        self.chunk_size = chunk_size
        self.pages = 0
        self.used_chunks = 0
        self.mru = MRUList()

    @property
    def chunks_per_page(self) -> int:
        """Chunks that fit into one page of this class."""
        return PAGE_SIZE // self.chunk_size

    @property
    def total_chunks(self) -> int:
        """Chunk capacity across all pages currently owned by the class."""
        return self.pages * self.chunks_per_page

    @property
    def free_chunks(self) -> int:
        """Unused chunks in already-assigned pages."""
        return self.total_chunks - self.used_chunks

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by used chunks (chunk-rounded, as Memcached bills)."""
        return self.used_chunks * self.chunk_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlabClass(id={self.class_id}, chunk={self.chunk_size}, "
            f"pages={self.pages}, used={self.used_chunks})"
        )


class SlabAllocator:
    """Page/chunk accounting for one Memcached node.

    Parameters
    ----------
    memory_bytes:
        Total cache memory; determines the page budget.
    min_chunk, growth_factor:
        Size-class table parameters (Memcached defaults).
    """

    def __init__(
        self,
        memory_bytes: int,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
    ) -> None:
        if memory_bytes < PAGE_SIZE:
            raise ConfigurationError(
                f"memory_bytes must be at least one page ({PAGE_SIZE}), "
                f"got {memory_bytes}"
            )
        self.memory_bytes = memory_bytes
        self.total_pages = memory_bytes // PAGE_SIZE
        self.assigned_pages = 0
        self.chunk_sizes = size_class_table(min_chunk, growth_factor)
        self.classes = [
            SlabClass(class_id, chunk_size)
            for class_id, chunk_size in enumerate(self.chunk_sizes)
        ]

    @property
    def free_pages(self) -> int:
        """Pages not yet assigned to any class."""
        return self.total_pages - self.assigned_pages

    def class_for_size(self, total_size: int) -> SlabClass:
        """Return the slab class whose chunk fits ``total_size`` bytes.

        Raises :class:`CapacityError` if the item exceeds the largest chunk
        (Memcached answers ``SERVER_ERROR object too large``).
        """
        index = bisect.bisect_left(self.chunk_sizes, total_size)
        if index == len(self.chunk_sizes):
            raise CapacityError(
                f"item of {total_size} bytes exceeds max chunk "
                f"{self.chunk_sizes[-1]}"
            )
        return self.classes[index]

    def try_allocate(self, slab_class: SlabClass) -> bool:
        """Reserve one chunk in ``slab_class``; assign a new page if needed.

        Returns ``False`` when the class is full and no free page remains --
        the caller must then evict from the class's LRU tail.
        """
        if slab_class.free_chunks == 0:
            if self.free_pages == 0:
                return False
            slab_class.pages += 1
            self.assigned_pages += 1
        slab_class.used_chunks += 1
        return True

    def release(self, slab_class: SlabClass) -> None:
        """Return one chunk of ``slab_class`` to its free pool."""
        if slab_class.used_chunks == 0:
            raise CapacityError(
                f"release on empty slab class {slab_class.class_id}"
            )
        slab_class.used_chunks -= 1

    def link_item(self, item: Item) -> SlabClass | None:
        """Pick the class for ``item``, allocate a chunk, and push it MRU.

        Returns the class on success, or ``None`` when the caller must evict
        first (no chunk and no page available).
        """
        slab_class = self.class_for_size(item.total_size)
        if not self.try_allocate(slab_class):
            return None
        item.slab_class_id = slab_class.class_id
        slab_class.mru.push_front(item)
        return slab_class

    def unlink_item(self, item: Item) -> None:
        """Remove ``item`` from its class's MRU list and free its chunk."""
        slab_class = self.classes[item.slab_class_id]
        slab_class.mru.remove(item)
        self.release(slab_class)
        item.slab_class_id = -1

    def page_fractions(self) -> dict[int, float]:
        """Fraction of assigned pages per class id (the paper's ``w_b``).

        Classes with no pages are omitted.  Returns an empty dict when no
        page has been assigned yet.
        """
        if self.assigned_pages == 0:
            return {}
        return {
            slab_class.class_id: slab_class.pages / self.assigned_pages
            for slab_class in self.classes
            if slab_class.pages > 0
        }

    def used_bytes(self) -> int:
        """Chunk-rounded bytes in use across all classes."""
        return sum(slab_class.used_bytes for slab_class in self.classes)

    def item_count(self) -> int:
        """Number of stored items across all classes."""
        return sum(len(slab_class.mru) for slab_class in self.classes)

    def accounting(self) -> dict[str, int]:
        """Aggregate accounting snapshot.

        The strict-mode validators (:mod:`repro.check.invariants`) use
        this to report page/chunk bookkeeping in their structured diffs;
        the per-class page counts must sum to ``assigned_pages`` and the
        item count must match the chunks in use.
        """
        return {
            "total_pages": self.total_pages,
            "assigned_pages": self.assigned_pages,
            "summed_class_pages": sum(c.pages for c in self.classes),
            "used_chunks": sum(c.used_chunks for c in self.classes),
            "items": self.item_count(),
            "used_bytes": self.used_bytes(),
        }
