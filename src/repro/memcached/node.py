"""A single Memcached node.

Combines the hash table, the slab allocator, and the per-class MRU lists
into the ``get``/``set``/``delete`` surface a client sees, plus the two
custom commands the paper adds for ElMem (Section V-A1):

- :meth:`MemcachedNode.dump_timestamps` -- the *timestamp dump* command that
  writes a slab's MRU timestamps (the input to FuseCache), and
- :meth:`MemcachedNode.batch_import` -- the *batch import* command that
  installs migrated KV pairs while evicting colder local items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import CapacityError
from repro.memcached.items import ITEM_OVERHEAD, Item
from repro.memcached.slab import PAGE_SIZE, SlabAllocator, SlabClass
from repro.obs.metrics import NULL_METRICS


@dataclass
class NodeStats:
    """Operation counters, mirroring the interesting parts of ``stats``."""

    get_hits: int = 0
    get_misses: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    expired: int = 0
    too_large: int = 0
    imported: int = 0

    @property
    def gets(self) -> int:
        """Total ``get`` operations served."""
        return self.get_hits + self.get_misses

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate; 0.0 when no ``get`` has been issued."""
        return self.get_hits / self.gets if self.gets else 0.0


@dataclass
class MigratedItem:
    """One KV pair in flight between nodes during migration."""

    key: str
    value: Any
    value_size: int
    last_access: float
    created_at: float = field(default=0.0)

    @property
    def transfer_bytes(self) -> int:
        """Bytes this pair contributes to a data-migration transfer."""
        return len(self.key) + self.value_size


class MemcachedNode:
    """One cache server: hash table + slab allocator + MRU lists.

    Parameters
    ----------
    name:
        Node identifier used by the hash ring and the Master.
    memory_bytes:
        Cache memory; carved into 1 MB pages by the slab allocator.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  Commands
        and evictions also bump cluster-wide counters
        (``node_commands_total{op=...}``, ``node_evictions_total``,
        ``node_items_imported_total``); the counters are resolved once
        here, so the disabled-mode hot-path cost is one no-op call.
    """

    def __init__(
        self,
        name: str,
        memory_bytes: int,
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        metrics: Any | None = None,
    ) -> None:
        self.name = name
        self.memory_bytes = memory_bytes
        self.slabs = SlabAllocator(memory_bytes, min_chunk, growth_factor)
        self.stats = NodeStats()
        self._table: dict[str, Item] = {}
        self._cas_counter = 0
        metrics = metrics or NULL_METRICS
        self._m_gets = metrics.counter(
            "node_commands_total", "Cache commands served", op="get"
        )
        self._m_sets = metrics.counter("node_commands_total", op="set")
        self._m_deletes = metrics.counter(
            "node_commands_total", op="delete"
        )
        self._m_evictions = metrics.counter(
            "node_evictions_total", "Items evicted to make room"
        )
        self._m_imported = metrics.counter(
            "node_items_imported_total",
            "Items installed by migration batch imports",
        )

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def get(self, key: str, now: float) -> Any | None:
        """Fetch ``key``; a hit refreshes its MRU position and timestamp.

        Returns the cached value, or ``None`` on a miss.  Expired items
        are reclaimed lazily here, as in Memcached.
        """
        self._m_gets.inc()
        item = self._live_item(key, now)
        if item is None:
            self.stats.get_misses += 1
            return None
        item.touch(now)
        self.slabs.classes[item.slab_class_id].mru.move_to_front(item)
        self.stats.get_hits += 1
        return item.value

    def gets(self, key: str, now: float) -> tuple[Any, int] | None:
        """Like :meth:`get` but also returns the CAS token."""
        value = self.get(key, now)
        if value is None:
            return None
        return value, self._table[key].cas_id

    def get_many(self, keys: Iterable[str], now: float) -> list[Any | None]:
        """Batched :meth:`get`: one value (or ``None``) per key, in order.

        Behavior-identical to calling :meth:`get` per key -- the same MRU
        moves, the same lazy expiry reclaim, the same counter totals --
        but the per-operation Python call chain (``_live_item``,
        ``touch``, per-op metric increments) is amortized across the
        batch.  The equivalence tests hold the two paths bit-identical.
        """
        table = self._table
        stats = self.stats
        mrus = [slab_class.mru for slab_class in self.slabs.classes]
        values: list[Any | None] = []
        append = values.append
        hits = 0
        misses = 0
        for key in keys:
            item = table.get(key)
            if item is None:
                misses += 1
                append(None)
                continue
            expires = item.expires_at
            if expires > 0.0 and now >= expires:
                self._unlink(item)
                stats.expired += 1
                misses += 1
                append(None)
                continue
            item.last_access = now
            # Inlined MRUList.move_to_front: splice the item out and
            # re-link it at the head (sizes cancel, so the counter is
            # untouched).  ``item.prev`` is non-None whenever the item is
            # not already the head of a well-formed list.
            mru = mrus[item.slab_class_id]
            head = mru._head
            if head is not item:
                prev = item.prev
                nxt = item.next
                prev.next = nxt
                if nxt is not None:
                    nxt.prev = prev
                else:
                    mru._tail = prev
                item.prev = None
                item.next = head
                head.prev = item
                mru._head = item
            hits += 1
            append(item.value)
        stats.get_hits += hits
        stats.get_misses += misses
        self._m_gets.inc(hits + misses)
        return values

    def set_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float
    ) -> int:
        """Batched TTL-less :meth:`set` of ``(key, value, value_size)``
        triples; returns how many stored.

        Amortizes slab-class resolution (one bisect per distinct item
        size instead of one per item), CAS bookkeeping, and counter
        updates.  Eviction takes the exact per-op path, so eviction
        sequences are bit-identical to sequential ``set`` calls.
        """
        table = self._table
        stats = self.stats
        slabs = self.slabs
        stored = 0
        # total_size -> (slab class, chunks per page), resolved at most
        # once per distinct size in the batch.
        class_cache: dict[int, tuple[SlabClass, int]] = {}
        for key, value, value_size in entries:
            existing = table.get(key)
            if existing is not None:
                self._unlink(existing)
            item = Item(key, value, value_size, now)
            self._cas_counter += 1
            item.cas_id = self._cas_counter
            total = ITEM_OVERHEAD + len(key) + value_size
            entry = class_cache.get(total)
            if entry is None:
                try:
                    slab_class = slabs.class_for_size(total)
                except CapacityError:
                    stats.too_large += 1
                    continue
                entry = (slab_class, PAGE_SIZE // slab_class.chunk_size)
                class_cache[total] = entry
            slab_class, chunks_per_page = entry
            if slab_class.used_chunks < slab_class.pages * chunks_per_page:
                # Fast path: a free chunk already exists in the class.
                slab_class.used_chunks += 1
            elif self._make_room(item) is None:
                continue
            item.slab_class_id = slab_class.class_id
            # Inlined MRUList.push_front (the item is freshly built and
            # unlinked).
            mru = slab_class.mru
            head = mru._head
            item.next = head
            if head is not None:
                head.prev = item
            else:
                mru._tail = item
            mru._head = item
            mru._size += 1
            table[key] = item
            stored += 1
        stats.sets += stored
        self._m_sets.inc(stored)
        return stored

    def delete_many(self, keys: Iterable[str]) -> int:
        """Batched :meth:`delete`; returns how many keys were present."""
        table = self._table
        deleted = 0
        for key in keys:
            item = table.get(key)
            if item is None:
                continue
            self._unlink(item)
            deleted += 1
        self.stats.deletes += deleted
        self._m_deletes.inc(deleted)
        return deleted

    def contains(self, key: str) -> bool:
        """True if ``key`` is cached (no MRU side effects)."""
        return key in self._table

    def peek(self, key: str) -> Item | None:
        """Return the item record without touching MRU state."""
        return self._table.get(key)

    def set(
        self,
        key: str,
        value: Any,
        value_size: int,
        now: float,
        exptime: float = 0.0,
    ) -> bool:
        """Store ``key`` -> ``value``; evicts LRU items to make room.

        ``exptime`` > 0 sets a TTL in seconds (0 = never expires).
        Returns ``False`` (and counts ``too_large``) when the item exceeds
        the largest chunk, matching Memcached's ``SERVER_ERROR``.
        """
        existing = self._table.get(key)
        if existing is not None:
            self._unlink(existing)
        item = Item(key, value, value_size, now, exptime=exptime)
        item.cas_id = self._next_cas()
        if not self._insert(item):
            return False
        self.stats.sets += 1
        self._m_sets.inc()
        return True

    def add(
        self,
        key: str,
        value: Any,
        value_size: int,
        now: float,
        exptime: float = 0.0,
    ) -> bool:
        """Store only if ``key`` is absent (Memcached ``add``)."""
        if self._live_item(key, now) is not None:
            return False
        return self.set(key, value, value_size, now, exptime=exptime)

    def replace(
        self,
        key: str,
        value: Any,
        value_size: int,
        now: float,
        exptime: float = 0.0,
    ) -> bool:
        """Store only if ``key`` is present (Memcached ``replace``)."""
        if self._live_item(key, now) is None:
            return False
        return self.set(key, value, value_size, now, exptime=exptime)

    def append(
        self, key: str, suffix: Any, suffix_size: int, now: float
    ) -> bool:
        """Concatenate after the existing value (Memcached ``append``)."""
        return self._concat(key, suffix, suffix_size, now, after=True)

    def prepend(
        self, key: str, prefix: Any, prefix_size: int, now: float
    ) -> bool:
        """Concatenate before the existing value (Memcached ``prepend``)."""
        return self._concat(key, prefix, prefix_size, now, after=False)

    def cas(
        self,
        key: str,
        value: Any,
        value_size: int,
        cas_id: int,
        now: float,
        exptime: float = 0.0,
    ) -> str:
        """Compare-and-swap: store only if the CAS token still matches.

        Returns ``"stored"``, ``"exists"`` (token mismatch) or
        ``"not_found"`` -- the three Memcached outcomes.
        """
        item = self._live_item(key, now)
        if item is None:
            return "not_found"
        if item.cas_id != cas_id:
            return "exists"
        self.set(key, value, value_size, now, exptime=exptime)
        return "stored"

    def incr(self, key: str, delta: int, now: float) -> int | None:
        """Increment a numeric value (Memcached ``incr``); ``None`` on
        a miss, raises ``ValueError`` for non-numeric values."""
        return self._arith(key, delta, now)

    def decr(self, key: str, delta: int, now: float) -> int | None:
        """Decrement a numeric value, clamped at zero as Memcached does."""
        return self._arith(key, -delta, now)

    def touch_item(self, key: str, exptime: float, now: float) -> bool:
        """Reset a TTL without fetching (Memcached ``touch``)."""
        item = self._live_item(key, now)
        if item is None:
            return False
        item.expires_at = now + exptime if exptime > 0 else 0.0
        item.touch(now)
        self.slabs.classes[item.slab_class_id].mru.move_to_front(item)
        return True

    def crawl_expired(self, now: float) -> int:
        """Reclaim every expired item (the LRU-crawler routine ElMem's
        timestamp-dump command is built on, Section V-A1).

        Returns the number of items reclaimed.
        """
        reclaimed = 0
        for slab_class in self.slabs.classes:
            expired = [
                item for item in slab_class.mru if item.is_expired(now)
            ]
            for item in expired:
                self._unlink(item)
                self.stats.expired += 1
                reclaimed += 1
        return reclaimed

    def delete(self, key: str) -> bool:
        """Remove ``key`` if cached; returns whether it was present."""
        item = self._table.get(key)
        if item is None:
            return False
        self._unlink(item)
        self.stats.deletes += 1
        self._m_deletes.inc()
        return True

    def flush_all(self) -> None:
        """Drop every cached item (used when a node is retired/recycled)."""
        for item in list(self._table.values()):
            self._unlink(item)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    @property
    def curr_items(self) -> int:
        """Number of items currently cached."""
        return len(self._table)

    @property
    def used_bytes(self) -> int:
        """Chunk-rounded bytes in use."""
        return self.slabs.used_bytes()

    def keys(self) -> Iterable[str]:
        """Iterate over all cached keys (no MRU side effects)."""
        return self._table.keys()

    def items_in_mru_order(self, class_id: int) -> list[Item]:
        """All items of one slab class, hottest first."""
        return list(self.slabs.classes[class_id].mru)

    def active_class_ids(self) -> list[int]:
        """Ids of slab classes that currently hold at least one item."""
        return [
            slab_class.class_id
            for slab_class in self.slabs.classes
            if len(slab_class.mru) > 0
        ]

    # ------------------------------------------------------------------
    # ElMem custom commands (paper Section V-A1)
    # ------------------------------------------------------------------

    def dump_timestamps(self, class_id: int) -> list[tuple[str, float]]:
        """The paper's *timestamp dump*: ``(key, last_access)`` per item of
        one slab class, in MRU order (timestamps non-increasing)."""
        return [
            (item.key, item.last_access)
            for item in self.slabs.classes[class_id].mru
        ]

    def dump_metadata(self) -> dict[int, list[tuple[str, float]]]:
        """Timestamp dump for every non-empty slab class."""
        return {
            class_id: self.dump_timestamps(class_id)
            for class_id in self.active_class_ids()
        }

    def export_items(self, keys: Iterable[str]) -> list[MigratedItem]:
        """Read the full KV pairs for ``keys`` (phase 3 of migration).

        Unknown keys are skipped: they may have been evicted since the
        metadata dump, which the protocol tolerates.
        """
        exported: list[MigratedItem] = []
        for key in keys:
            item = self._table.get(key)
            if item is None:
                continue
            exported.append(
                MigratedItem(
                    key=item.key,
                    value=item.value,
                    value_size=item.value_size,
                    last_access=item.last_access,
                    created_at=item.created_at,
                )
            )
        return exported

    def batch_import(
        self,
        migrated: Iterable[MigratedItem],
        mode: str = "merge",
        now: float = 0.0,
    ) -> int:
        """The paper's *batch import*: install migrated pairs, evicting
        colder local items as needed.

        Modes:

        - ``"merge"`` (default): splice each pair at its timestamp
          position, preserving the invariant that the MRU list is sorted
          by ``last_access`` -- which later FuseCache invocations rely on.
        - ``"prepend"``: pairs go to the MRU head in the given order,
          keeping their original timestamps -- the paper's implementation.
        - ``"fresh"``: pairs go to the MRU head stamped with ``now``, the
          behaviour of a naive dump-and-``set`` migration tool that does
          not carry hotness metadata.  Cold imports then masquerade as
          the hottest items and push genuinely hot local data toward the
          eviction tail (the failure mode of the paper's *Naive*
          comparison).

        Returns the number of items actually imported.
        """
        if mode not in ("merge", "prepend", "fresh"):
            raise ValueError(f"unknown import mode {mode!r}")
        count = 0
        for record in migrated:
            existing = self._table.get(record.key)
            if existing is not None:
                self._unlink(existing)
            item = Item(record.key, record.value, record.value_size, 0.0)
            item.cas_id = self._next_cas()
            if mode == "fresh":
                item.last_access = now
                item.created_at = now
            else:
                item.last_access = record.last_access
                item.created_at = record.created_at or record.last_access
            if mode == "merge":
                inserted = self._insert_sorted(item)
            else:
                inserted = self._insert(item)
            if inserted:
                count += 1
                self.stats.imported += 1
        self._m_imported.inc(count)
        return count

    def median_timestamp(self, class_id: int) -> float | None:
        """MRU timestamp of the median item of a slab class (Section III-C).

        Returns ``None`` for an empty class.
        """
        median_item = self.slabs.classes[class_id].mru.median()
        return None if median_item is None else median_item.last_access

    def page_fractions(self) -> dict[int, float]:
        """Per-class fraction of assigned pages (the scoring weights)."""
        return self.slabs.page_fractions()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_cas(self) -> int:
        self._cas_counter += 1
        return self._cas_counter

    def _live_item(self, key: str, now: float) -> Item | None:
        """The item if present and unexpired; reclaims lazily otherwise."""
        item = self._table.get(key)
        if item is None:
            return None
        if item.is_expired(now):
            self._unlink(item)
            self.stats.expired += 1
            return None
        return item

    def _concat(
        self, key: str, piece: Any, piece_size: int, now: float, after: bool
    ) -> bool:
        item = self._live_item(key, now)
        if item is None:
            return False
        if after:
            new_value = (item.value, piece)
        else:
            new_value = (piece, item.value)
        remaining = (
            item.expires_at - now if item.expires_at > 0 else 0.0
        )
        return self.set(
            key,
            new_value,
            item.value_size + piece_size,
            now,
            exptime=max(remaining, 0.0),
        )

    def _arith(self, key: str, delta: int, now: float) -> int | None:
        item = self._live_item(key, now)
        if item is None:
            return None
        try:
            current = int(item.value)
        except (TypeError, ValueError):
            raise ValueError(
                f"cannot increment non-numeric value for {key!r}"
            ) from None
        updated = max(0, current + delta)
        item.value = updated
        item.touch(now)
        self.slabs.classes[item.slab_class_id].mru.move_to_front(item)
        return updated

    def _insert(self, item: Item) -> bool:
        """Link ``item`` at the MRU head, evicting as needed."""
        slab_class = self._make_room(item)
        if slab_class is None:
            return False
        item.slab_class_id = slab_class.class_id
        slab_class.mru.push_front(item)
        self._table[item.key] = item
        return True

    def _insert_sorted(self, item: Item) -> bool:
        """Link ``item`` at its timestamp position in the MRU list."""
        slab_class = self._make_room(item)
        if slab_class is None:
            return False
        anchor = None
        for candidate in slab_class.mru:
            if candidate.last_access <= item.last_access:
                anchor = candidate
                break
        item.slab_class_id = slab_class.class_id
        slab_class.mru.insert_before(anchor, item)
        self._table[item.key] = item
        return True

    def _make_room(self, item: Item) -> SlabClass | None:
        """Reserve a chunk for ``item``, evicting LRU tails if required."""
        try:
            slab_class = self.slabs.class_for_size(item.total_size)
        except CapacityError:
            self.stats.too_large += 1
            return None
        while not self.slabs.try_allocate(slab_class):
            victim = slab_class.mru.pop_back()
            if victim is None:
                # Class owns no page yet and no free page exists; evict via
                # another class is not done by stock Memcached, so fail.
                self.stats.too_large += 1
                return None
            del self._table[victim.key]
            self.slabs.release(slab_class)
            self.stats.evictions += 1
            self._m_evictions.inc()
        return slab_class

    def _unlink(self, item: Item) -> None:
        self.slabs.unlink_item(item)
        del self._table[item.key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemcachedNode(name={self.name!r}, items={len(self)}, "
            f"bytes={self.used_bytes}/{self.memory_bytes})"
        )
