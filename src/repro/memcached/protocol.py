"""Memcached ASCII (text) protocol server facade.

Wraps a :class:`~repro.memcached.node.MemcachedNode` behind the classic
text protocol, so the node can be driven exactly the way ``telnet 11211``
or a client library would drive real Memcached:

    set user:1 0 0 5\r\nhello\r\n        ->  STORED\r\n
    get user:1\r\n                       ->  VALUE user:1 0 5\r\nhello\r\nEND\r\n

Supported commands: ``get``/``gets`` (multi-key), ``set``/``add``/
``replace``/``append``/``prepend``/``cas``, ``delete``, ``incr``/``decr``,
``touch``, ``flush_all``, ``stats`` (+ ``stats slabs``), ``version``, plus
the paper's two custom migration commands (Section V-A1):

- ``ts_dump <class_id>`` -- the *timestamp dump*: streams
  ``TS <key> <last_access> <size>`` for every item of one slab class in
  MRU order, terminated by ``END`` (the trailing value size lets a
  remote planner price data flows without fetching values);
- ``batch_import <mode> <count>`` -- the *batch import*: expects
  ``count`` item blocks, each a ``<key> <last_access> <size> [flags]``
  header line followed by ``size`` payload bytes, and installs them via
  :meth:`~repro.memcached.node.MemcachedNode.batch_import`, answering
  ``IMPORTED <n>``.  A malformed header or data chunk aborts the whole
  batch with ``CLIENT_ERROR`` (nothing is imported);
- ``mig_export <count>`` -- the *data export* that feeds a remote batch
  import: expects ``count`` key lines, then streams one
  ``ITEM <key> <flags> <last_access> <size>`` header plus ``size``
  payload bytes per key still cached (evicted keys are silently
  skipped, mirroring
  :meth:`~repro.memcached.node.MemcachedNode.export_items`), terminated
  by ``END``.  Unlike ``get``, the export does not touch MRU positions
  or timestamps, so hotness metadata survives the move.

The parser is incremental: :meth:`TextProtocolServer.feed` accepts
arbitrary byte chunks and returns whatever complete responses they
produce, holding partial commands (or partial data blocks) until more
bytes arrive.  ``exptime`` is interpreted as relative seconds
(simulation time); Memcached's 30-day absolute-timestamp rule is not
modeled.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.memcached.node import MemcachedNode, MigratedItem
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.livetrace import TraceContext, parse_trace_args
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS

CRLF = b"\r\n"
MAX_KEY_LENGTH = 250

IMPORT_MODES = frozenset({"merge", "prepend", "fresh"})


def _wire_value(value: object) -> tuple[int, bytes]:
    """Serialize a cached value as ``(flags, payload)`` for the wire.

    Values stored through the protocol are always ``(flags, payload)``
    tuples; values planted directly on the node by simulation code are
    coerced via ``str`` so an export never crashes the connection.
    """
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], (bytes, bytearray))
    ):
        flags = value[0] if isinstance(value[0], int) else 0
        return flags, bytes(value[1])
    if isinstance(value, (bytes, bytearray)):
        return 0, bytes(value)
    return 0, str(value).encode("utf-8")


class _ImportState:
    """Parser state for one in-flight ``batch_import`` command."""

    __slots__ = ("mode", "remaining", "records", "header")

    def __init__(self, mode: str, count: int) -> None:
        self.mode = mode
        self.remaining = count
        self.records: list[MigratedItem] = []
        # (key, last_access, size, flags) of the item whose payload is
        # awaited.
        self.header: tuple[str, float, int, int] | None = None


class _ExportState:
    """Parser state for one in-flight ``mig_export`` command."""

    __slots__ = ("remaining", "keys")

    def __init__(self, count: int) -> None:
        self.remaining = count
        self.keys: list[str] = []


STORAGE_COMMANDS = frozenset(
    {"set", "add", "replace", "append", "prepend", "cas"}
)


class TextProtocolServer:
    """Incremental text-protocol handler for one Memcached node.

    Parameters
    ----------
    node:
        The node executing the commands.
    clock:
        Zero-argument callable returning the current simulation time;
        every operation is stamped with it.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  When its metrics layer
        is enabled each dispatched command is timed into
        ``net_server_execute_seconds``; when its live tracer is enabled
        an incoming ``trace <trace_id> <span_id>`` framing line makes the
        next command record a ``server.<command>`` span joined to the
        caller's trace.
    """

    def __init__(
        self,
        node: MemcachedNode,
        clock: Callable[[], float],
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node = node
        self.clock = clock
        self.telemetry = telemetry or NULL_TELEMETRY
        self._buffer = b""
        # When a storage command header has been read, this holds
        # (command line parts, payload bytes expected, trace context).
        self._pending: tuple[list[str], int, TraceContext | None] | None = None
        # In-flight batch_import command, if any.
        self._import: _ImportState | None = None
        # In-flight mig_export command, if any.
        self._export: _ExportState | None = None
        # Trace context announced by a `trace` frame, consumed by the
        # next dispatched command.
        self._trace: TraceContext | None = None
        metrics = self.telemetry.metrics
        self._obs: bool = bool(getattr(metrics, "enabled", False))
        self._live: Any = self.telemetry.live
        if self._obs:
            self._m_execute: Any = metrics.histogram(
                "net_server_execute_seconds",
                "Command execution time inside the protocol handler.",
                buckets=LATENCY_SECONDS_BUCKETS,
                node=node.name,
            )
        else:
            self._m_execute = None
        # Total seconds spent executing commands, so the owning server
        # can derive parse time as (feed wall time - execute delta).
        self.execute_seconds = 0.0

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> bytes:
        """Consume ``data`` and return the responses it completes."""
        self._buffer += data
        responses: list[bytes] = []
        while True:
            if self._pending is not None:
                parts, size, ctx = self._pending
                # Payload plus its trailing CRLF must be available.
                if len(self._buffer) < size + 2:
                    break
                payload = self._buffer[:size]
                trailer = self._buffer[size : size + 2]
                self._buffer = self._buffer[size + 2 :]
                self._pending = None
                if trailer != CRLF:
                    responses.append(b"CLIENT_ERROR bad data chunk" + CRLF)
                else:
                    responses.append(self._run_store(parts, payload, ctx))
                continue
            if self._import is not None and self._import.header is not None:
                key, last_access, size, flags = self._import.header
                if len(self._buffer) < size + 2:
                    break
                payload = self._buffer[:size]
                trailer = self._buffer[size : size + 2]
                self._buffer = self._buffer[size + 2 :]
                state = self._import
                if trailer != CRLF:
                    self._import = None
                    responses.append(b"CLIENT_ERROR bad data chunk" + CRLF)
                    continue
                state.header = None
                state.records.append(
                    MigratedItem(
                        key=key,
                        value=(flags, payload),
                        value_size=size,
                        last_access=last_access,
                    )
                )
                if state.remaining == 0:
                    responses.append(self._finish_import(state))
                continue
            line_end = self._buffer.find(CRLF)
            if line_end < 0:
                break
            line = self._buffer[:line_end].decode("utf-8", "replace")
            self._buffer = self._buffer[line_end + 2 :]
            if self._import is not None:
                response = self._import_header_line(line)
            elif self._export is not None:
                response = self._export_key_line(line)
            else:
                response = self._dispatch(line)
            if response is not None:
                responses.append(response)
        return b"".join(responses)

    def execute(self, command: str, payload: bytes | None = None) -> bytes:
        """One-shot helper: run a single command line (plus payload)."""
        data = command.encode("utf-8") + CRLF
        if payload is not None:
            data += payload + CRLF
        return self.feed(data)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, line: str) -> bytes | None:
        parts = line.split()
        if not parts:
            self._trace = None
            return b"ERROR" + CRLF
        command = parts[0].lower()
        if command == "trace":
            return self._trace_frame(parts[1:])
        # The context announced by a preceding `trace` frame applies to
        # exactly one command.
        ctx, self._trace = self._trace, None
        if command in STORAGE_COMMANDS:
            return self._begin_storage(parts, ctx)
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return b"ERROR" + CRLF
        if self._obs or ctx is not None:
            return self._run_timed(command, handler, parts[1:], ctx)
        return handler(parts[1:])

    def _trace_frame(self, args: list[str]) -> bytes | None:
        """Handle a ``trace <trace_id> <span_id>`` framing line."""
        ctx = parse_trace_args(args)
        if ctx is None:
            self._trace = None
            return b"CLIENT_ERROR bad trace frame" + CRLF
        self._trace = ctx
        return None

    def _run_timed(
        self,
        command: str,
        handler: Callable[[list[str]], bytes | None],
        args: list[str],
        ctx: TraceContext | None,
    ) -> bytes | None:
        # live-path timing, not sim time
        start = time.perf_counter()  # repro: allow[REP001]
        try:
            return handler(args)
        finally:
            elapsed = time.perf_counter() - start  # repro: allow[REP001]
            self.execute_seconds += elapsed
            if self._m_execute is not None:
                self._m_execute.observe(elapsed)
            if ctx is not None and self._live.enabled:
                wall_end = time.time()  # repro: allow[REP001]
                span = self._live.start_span(
                    f"server.{command}",
                    ctx,
                    start_s=wall_end - elapsed,
                    node=self.node.name,
                )
                span.end(wall_end)

    def _run_store(
        self, parts: list[str], payload: bytes, ctx: TraceContext | None
    ) -> bytes:
        if not (self._obs or ctx is not None):
            return self._store(parts, payload)
        # live-path timing, not sim time
        start = time.perf_counter()  # repro: allow[REP001]
        try:
            return self._store(parts, payload)
        finally:
            elapsed = time.perf_counter() - start  # repro: allow[REP001]
            self.execute_seconds += elapsed
            if self._m_execute is not None:
                self._m_execute.observe(elapsed)
            if ctx is not None and self._live.enabled:
                wall_end = time.time()  # repro: allow[REP001]
                span = self._live.start_span(
                    f"server.{parts[0].lower()}",
                    ctx,
                    start_s=wall_end - elapsed,
                    node=self.node.name,
                )
                span.end(wall_end)

    def _begin_storage(
        self, parts: list[str], ctx: TraceContext | None = None
    ) -> bytes | None:
        command = parts[0].lower()
        expected = 6 if command == "cas" else 5
        if len(parts) not in (expected, expected + 1):
            return b"CLIENT_ERROR bad command line format" + CRLF
        try:
            size = int(parts[4])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if size < 0:
            return b"CLIENT_ERROR bad data chunk" + CRLF
        if len(parts[1]) > MAX_KEY_LENGTH:
            return b"CLIENT_ERROR key too long" + CRLF
        self._pending = (parts, size, ctx)
        return None

    def _store(self, parts: list[str], payload: bytes) -> bytes:
        command = parts[0].lower()
        key = parts[1]
        try:
            flags = int(parts[2])
            exptime = float(parts[3])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        now = self.clock()
        value = (flags, payload)
        size = len(payload)
        if command == "set":
            stored = self.node.set(key, value, size, now, exptime=exptime)
            if not stored:
                return b"SERVER_ERROR object too large for cache" + CRLF
            return b"STORED" + CRLF
        if command == "add":
            stored = self.node.add(key, value, size, now, exptime=exptime)
            return (b"STORED" if stored else b"NOT_STORED") + CRLF
        if command == "replace":
            stored = self.node.replace(
                key, value, size, now, exptime=exptime
            )
            return (b"STORED" if stored else b"NOT_STORED") + CRLF
        if command in ("append", "prepend"):
            existing = self.node.peek(key)
            if existing is None or existing.is_expired(now):
                return b"NOT_STORED" + CRLF
            old_flags, old_payload = existing.value
            merged = (
                old_payload + payload
                if command == "append"
                else payload + old_payload
            )
            self.node.set(
                key, (old_flags, merged), len(merged), now
            )
            return b"STORED" + CRLF
        # cas
        try:
            token = int(parts[5])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        outcome = self.node.cas(
            key, value, size, token, now, exptime=exptime
        )
        return {
            "stored": b"STORED",
            "exists": b"EXISTS",
            "not_found": b"NOT_FOUND",
        }[outcome] + CRLF

    # ------------------------------------------------------------------
    # Retrieval / mutation commands
    # ------------------------------------------------------------------

    def _cmd_get(self, keys: list[str], with_cas: bool = False) -> bytes:
        if not keys:
            return b"ERROR" + CRLF
        now = self.clock()
        chunks: list[bytes] = []
        for key in keys:
            value = self.node.get(key, now)
            if value is None:
                continue
            flags, payload = value
            header = f"VALUE {key} {flags} {len(payload)}"
            if with_cas:
                header += f" {self.node.peek(key).cas_id}"
            chunks.append(header.encode("utf-8") + CRLF + payload + CRLF)
        chunks.append(b"END" + CRLF)
        return b"".join(chunks)

    def _cmd_gets(self, keys: list[str]) -> bytes:
        return self._cmd_get(keys, with_cas=True)

    def _cmd_delete(self, args: list[str]) -> bytes:
        if len(args) != 1:
            return b"CLIENT_ERROR bad command line format" + CRLF
        deleted = self.node.delete(args[0])
        return (b"DELETED" if deleted else b"NOT_FOUND") + CRLF

    def _cmd_incr(self, args: list[str]) -> bytes:
        return self._arith(args, sign=1)

    def _cmd_decr(self, args: list[str]) -> bytes:
        return self._arith(args, sign=-1)

    def _arith(self, args: list[str], sign: int) -> bytes:
        if len(args) != 2:
            return b"CLIENT_ERROR bad command line format" + CRLF
        key = args[0]
        try:
            delta = int(args[1])
        except ValueError:
            return (
                b"CLIENT_ERROR invalid numeric delta argument" + CRLF
            )
        now = self.clock()
        item = self.node.peek(key)
        if item is None or item.is_expired(now):
            return b"NOT_FOUND" + CRLF
        flags, payload = item.value
        try:
            current = int(payload)
        except ValueError:
            return (
                b"CLIENT_ERROR cannot increment or decrement "
                b"non-numeric value" + CRLF
            )
        updated = max(0, current + sign * delta)
        new_payload = str(updated).encode("utf-8")
        self.node.set(key, (flags, new_payload), len(new_payload), now)
        return str(updated).encode("utf-8") + CRLF

    def _cmd_touch(self, args: list[str]) -> bytes:
        if len(args) != 2:
            return b"CLIENT_ERROR bad command line format" + CRLF
        try:
            exptime = float(args[1])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        touched = self.node.touch_item(args[0], exptime, self.clock())
        return (b"TOUCHED" if touched else b"NOT_FOUND") + CRLF

    def _cmd_flush_all(self, args: list[str]) -> bytes:
        self.node.flush_all()
        return b"OK" + CRLF

    def _cmd_version(self, args: list[str]) -> bytes:
        return b"VERSION repro-1.4.25-elmem" + CRLF

    def _cmd_stats(self, args: list[str]) -> bytes:
        if args and args[0] == "slabs":
            return self._stats_slabs()
        if args and args[0] == "obs":
            return self._stats_obs()
        stats = self.node.stats
        pairs = [
            ("curr_items", self.node.curr_items),
            ("bytes", self.node.used_bytes),
            ("limit_maxbytes", self.node.memory_bytes),
            ("cmd_get", stats.gets),
            ("cmd_set", stats.sets),
            ("get_hits", stats.get_hits),
            ("get_misses", stats.get_misses),
            ("delete_hits", stats.deletes),
            ("evictions", stats.evictions),
            ("expired_unfetched", stats.expired),
        ]
        body = b"".join(
            f"STAT {name} {value}".encode("utf-8") + CRLF
            for name, value in pairs
        )
        return body + b"END" + CRLF

    def _stats_obs(self) -> bytes:
        """``stats obs``: this process's metrics in Prometheus text.

        The payload rides in standard ``VALUE`` framing so any client
        that can read a ``get`` response (including
        :meth:`repro.net.client.NodeClient.execute`) can scrape it.
        With metrics disabled the payload is empty.
        """
        from repro.obs.export import to_prometheus

        metrics = self.telemetry.metrics
        if getattr(metrics, "enabled", False):
            payload = to_prometheus(metrics).encode("utf-8")
        else:
            payload = b""
        header = f"VALUE obs 0 {len(payload)}".encode("utf-8")
        return header + CRLF + payload + CRLF + b"END" + CRLF

    def _stats_slabs(self) -> bytes:
        chunks: list[bytes] = []
        for slab_class in self.node.slabs.classes:
            if slab_class.pages == 0:
                continue
            cid = slab_class.class_id
            rows = [
                (f"{cid}:chunk_size", slab_class.chunk_size),
                (f"{cid}:chunks_per_page", slab_class.chunks_per_page),
                (f"{cid}:total_pages", slab_class.pages),
                (f"{cid}:used_chunks", slab_class.used_chunks),
                (f"{cid}:free_chunks", slab_class.free_chunks),
            ]
            chunks.extend(
                f"STAT {name} {value}".encode("utf-8") + CRLF
                for name, value in rows
            )
        chunks.append(
            "STAT active_slabs "
            f"{sum(1 for c in self.node.slabs.classes if c.pages)}".encode()
            + CRLF
        )
        chunks.append(b"END" + CRLF)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # Paper-custom migration commands (Section V-A1)
    # ------------------------------------------------------------------

    def _cmd_ts_dump(self, args: list[str]) -> bytes:
        if len(args) != 1:
            return b"CLIENT_ERROR bad command line format" + CRLF
        try:
            class_id = int(args[0])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if not 0 <= class_id < len(self.node.slabs.classes):
            return b"CLIENT_ERROR unknown slab class" + CRLF
        chunks = [
            f"TS {item.key} {item.last_access} {item.value_size}".encode(
                "utf-8"
            )
            + CRLF
            for item in self.node.items_in_mru_order(class_id)
        ]
        chunks.append(b"END" + CRLF)
        return b"".join(chunks)

    def _cmd_batch_import(self, args: list[str]) -> bytes | None:
        if len(args) != 2:
            return b"CLIENT_ERROR bad command line format" + CRLF
        mode = args[0]
        if mode not in IMPORT_MODES:
            return b"CLIENT_ERROR unknown import mode" + CRLF
        try:
            count = int(args[1])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if count < 0:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if count == 0:
            return b"IMPORTED 0" + CRLF
        self._import = _ImportState(mode, count)
        return None

    def _import_header_line(self, line: str) -> bytes | None:
        """Parse one ``<key> <last_access> <size> [flags]`` item header."""
        state = self._import
        assert state is not None
        parts = line.split()
        if len(parts) not in (3, 4) or len(parts[0]) > MAX_KEY_LENGTH:
            self._import = None
            return b"CLIENT_ERROR bad item header" + CRLF
        try:
            last_access = float(parts[1])
            size = int(parts[2])
            flags = int(parts[3]) if len(parts) == 4 else 0
        except ValueError:
            self._import = None
            return b"CLIENT_ERROR bad item header" + CRLF
        if size < 0:
            self._import = None
            return b"CLIENT_ERROR bad item header" + CRLF
        state.remaining -= 1
        state.header = (parts[0], last_access, size, flags)
        return None

    def _cmd_mig_export(self, args: list[str]) -> bytes | None:
        if len(args) != 1:
            return b"CLIENT_ERROR bad command line format" + CRLF
        try:
            count = int(args[0])
        except ValueError:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if count < 0:
            return b"CLIENT_ERROR bad command line format" + CRLF
        if count == 0:
            return b"END" + CRLF
        self._export = _ExportState(count)
        return None

    def _export_key_line(self, line: str) -> bytes | None:
        """Consume one requested key of an in-flight ``mig_export``."""
        state = self._export
        assert state is not None
        key = line.strip()
        if not key or " " in key or len(key) > MAX_KEY_LENGTH:
            self._export = None
            return b"CLIENT_ERROR bad export key" + CRLF
        state.keys.append(key)
        state.remaining -= 1
        if state.remaining > 0:
            return None
        self._export = None
        return self._finish_export(state)

    def _finish_export(self, state: _ExportState) -> bytes:
        chunks: list[bytes] = []
        for record in self.node.export_items(state.keys):
            flags, payload = _wire_value(record.value)
            header = (
                f"ITEM {record.key} {flags} {record.last_access} "
                f"{len(payload)}"
            )
            chunks.append(header.encode("utf-8") + CRLF + payload + CRLF)
        chunks.append(b"END" + CRLF)
        return b"".join(chunks)

    def _finish_import(self, state: _ImportState) -> bytes:
        self._import = None
        records = state.records
        seen: set[str] = set()
        for record in records:
            if record.key in seen:
                return (
                    f"CLIENT_ERROR duplicate key in batch: {record.key}"
                ).encode("utf-8") + CRLF
            seen.add(record.key)
        imported = self.node.batch_import(
            records, mode=state.mode, now=self.clock()
        )
        return f"IMPORTED {imported}".encode("utf-8") + CRLF
