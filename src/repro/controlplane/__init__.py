"""Control plane: the AutoScaler driving live migrations under load.

The simulator decides *and* migrates inside one process; the live tier
used to run only scripted scale-ins.  This package closes the loop on
real sockets:

- :mod:`repro.controlplane.daemon` -- :class:`ControlPlane`, a
  long-running supervisor that polls live node stats through the
  :class:`~repro.net.cluster.LiveCluster` snapshot agent, feeds the
  measured request rate (and the load generator's key samples) into the
  shared :class:`~repro.core.autoscaler.ScalingEngine`, and executes
  three-phase FuseCache migrations through the *unmodified*
  :class:`~repro.core.master.Master`;
- :mod:`repro.controlplane.admin` -- a dependency-free asyncio JSON/REST
  admin API (``GET /status``, ``GET /metrics``, ``POST /scale``,
  ``POST /drain/<node>``) served from an
  :class:`~repro.net.runtime.EventLoopThread`;
- :mod:`repro.controlplane.scenario` -- the end-to-end CI runner: seed a
  process cluster, keep open-loop traffic flowing, let the engine decide
  a scale-in, and measure the paper's degradation window.

The decision policy itself lives in :mod:`repro.core.autoscaler`
(:class:`~repro.core.autoscaler.ScalingEngine`), consumed unchanged by
both the simulator and this daemon -- one policy object, two clocks.
"""

from __future__ import annotations

from repro.controlplane.admin import AdminServer
from repro.controlplane.daemon import (
    ControlPlane,
    ControlPlaneConfig,
    ScaleInProgressError,
)
from repro.controlplane.scenario import (
    ControlPlaneScenarioResult,
    run_controlplane_scenario,
)

__all__ = [
    "AdminServer",
    "ControlPlane",
    "ControlPlaneConfig",
    "ControlPlaneScenarioResult",
    "ScaleInProgressError",
    "run_controlplane_scenario",
]
