"""Control-plane specific error types."""

from __future__ import annotations


class ScaleInProgressError(RuntimeError):
    """A scale command is already pending or executing.

    The admin API maps this to ``409 Conflict``: the control plane
    serialises migrations (one at a time, like the paper's Master), so a
    second scale request must be retried after the first completes.
    """
