"""The control plane's JSON/REST admin API, on plain asyncio.

A deliberately tiny HTTP/1.1 server -- request line, headers, optional
``Content-Length`` body, one response, close -- so the daemon exposes an
operable surface without any web framework:

- ``GET /status``   -- membership, engine state, migration history;
- ``GET /metrics``  -- the daemon's Prometheus families (same format as
  the node servers' ``stats obs`` scrape surface);
- ``POST /scale``   -- ``{"target": N}``; 202 when queued, 400 on a
  malformed body, 409 while another scale command is in flight;
- ``POST /drain/<node>`` -- retire one named node; 404 when unknown.

Commands never execute on the admin loop: they are validated, enqueued
on the :class:`~repro.controlplane.daemon.ControlPlane`, and picked up
by its control thread, so a slow migration cannot stall the API.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.controlplane.errors import ScaleInProgressError
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controlplane.daemon import ControlPlane

MAX_REQUEST_BYTES = 64 * 1024
"""Upper bound on one admin request (line + headers + body)."""

REQUEST_TIMEOUT_S = 10.0
"""Budget for reading one full request off the socket."""

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class AdminServer:
    """One asyncio TCP listener serving the admin routes."""

    def __init__(
        self,
        control: "ControlPlane",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.control = control
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._endpoint: tuple[str, int] | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid once started."""
        if self._endpoint is None:
            raise ConfigurationError("admin server is not running")
        return self._endpoint

    async def start(self) -> None:
        """Bind and start serving; idempotent."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if not sockets:  # pragma: no cover - asyncio always binds one
            raise ConfigurationError("admin server bound no sockets")
        name = sockets[0].getsockname()
        self._endpoint = (name[0], name[1])

    async def stop(self) -> None:
        """Stop accepting and close the listener; idempotent."""
        server, self._server = self._server, None
        self._endpoint = None
        if server is None:
            return
        server.close()
        await server.wait_closed()

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=REQUEST_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                await self._respond(writer, 408, {"error": "timed out"})
                return
            except _RequestError as exc:
                await self._respond(writer, exc.status, {"error": str(exc)})
                return
            status, payload, content_type = self._route(method, path, body)
            await self._respond(
                writer, status, payload, content_type=content_type
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; nothing left to flush

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3:
            raise _RequestError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        read = len(request_line)
        while True:
            line = await reader.readline()
            read += len(line)
            if read > MAX_REQUEST_BYTES:
                raise _RequestError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _RequestError(400, "bad content-length") from None
        if length > MAX_REQUEST_BYTES:
            raise _RequestError(413, "body too large")
        body = b""
        if length > 0:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _RequestError(400, "truncated body") from None
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any] | str,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any] | str, str]:
        path = path.split("?", 1)[0]
        if path == "/status":
            if method != "GET":
                return 405, {"error": "use GET"}, "application/json"
            return 200, self.control.status(), "application/json"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, "application/json"
            return 200, self.control.metrics_text(), "text/plain"
        if path == "/scale":
            if method != "POST":
                return 405, {"error": "use POST"}, "application/json"
            return self._scale(body)
        if path.startswith("/drain/"):
            if method != "POST":
                return 405, {"error": "use POST"}, "application/json"
            return self._drain(path[len("/drain/"):])
        return 404, {"error": f"no route {path}"}, "application/json"

    def _scale(
        self, body: bytes
    ) -> tuple[int, dict[str, Any], str]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, {"error": "body must be JSON"}, "application/json"
        if not isinstance(payload, dict) or "target" not in payload:
            return (
                400,
                {"error": 'body must be {"target": <nodes>}'},
                "application/json",
            )
        target = payload["target"]
        if isinstance(target, bool) or not isinstance(target, int):
            return (
                400,
                {"error": "target must be an integer node count"},
                "application/json",
            )
        try:
            accepted = self.control.request_scale(target)
        except ScaleInProgressError as exc:
            return 409, {"error": str(exc)}, "application/json"
        except ConfigurationError as exc:
            return 400, {"error": str(exc)}, "application/json"
        return 202, accepted, "application/json"

    def _drain(self, node: str) -> tuple[int, dict[str, Any], str]:
        try:
            accepted = self.control.request_drain(node)
        except KeyError:
            return 404, {"error": f"unknown node {node!r}"}, "application/json"
        except ScaleInProgressError as exc:
            return 409, {"error": str(exc)}, "application/json"
        except ConfigurationError as exc:
            return 400, {"error": str(exc)}, "application/json"
        return 202, accepted, "application/json"


class _RequestError(Exception):
    """A request that failed to parse; carries its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
