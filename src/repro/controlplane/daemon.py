"""The long-running control-plane daemon: monitor -> decide -> migrate.

:class:`ControlPlane` runs the paper's control loop against a live tier:

1. **Monitor** -- every ``poll_interval_s`` the control thread sums the
   active nodes' wire counters (``get_hits + get_misses + cmd_set``)
   through the snapshot agent and turns the delta into a smoothed
   request rate.  Key *samples* arrive separately, pushed by the load
   generator's (or proxy's) ``key_observer`` into the shared
   :class:`~repro.core.autoscaler.ScalingEngine`.
2. **Decide** -- the engine gates AutoScaler evaluations (interval,
   window fill, hysteresis, cooldown) exactly as in the simulator; the
   daemon supplies the live clock and the measured rate.
3. **Migrate** -- an acted decision (or an admin command) runs the
   three-phase FuseCache plan through the *unmodified*
   :class:`~repro.core.master.Master`; retired node processes are then
   drained away via the ``node_stopper`` hook.

The admin API (:mod:`repro.controlplane.admin`) serves from its own
:class:`~repro.net.runtime.EventLoopThread` and only ever enqueues
commands or reads cached state, so a migration in flight never blocks
``GET /status``.

The cluster handle is duck-typed: a live
:class:`~repro.net.cluster.LiveCluster` (nodes expose ``wire_stats()``)
or an in-process :class:`~repro.memcached.cluster.MemcachedCluster`
(nodes expose ``.stats``) both work, which is how the admin-API tests
run without sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.controlplane.admin import AdminServer
from repro.controlplane.errors import ScaleInProgressError
from repro.core.autoscaler import ScalingEngine
from repro.core.master import Master
from repro.errors import (
    ConfigurationError,
    TransportError,
    WireProtocolError,
)
from repro.net.runtime import EventLoopThread
from repro.obs import NULL_TELEMETRY, Telemetry

__all__ = [
    "ControlPlane",
    "ControlPlaneConfig",
    "ScaleInProgressError",
]

EVENT_LOG_LIMIT = 200
"""Events kept in memory (oldest dropped past this)."""


@dataclass
class ControlPlaneConfig:
    """Daemon knobs (the decision policy itself lives in the engine)."""

    poll_interval_s: float = 1.0
    #: EWMA weight of the newest rate sample (1.0 = no smoothing).
    rate_smoothing: float = 0.5
    admin_host: str = "127.0.0.1"
    admin_port: int = 0

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")
        if not 0.0 < self.rate_smoothing <= 1.0:
            raise ConfigurationError("rate_smoothing must be in (0, 1]")


class ControlPlane:
    """Autoscaler-driven scaling supervisor over one cluster.

    Parameters
    ----------
    cluster:
        The tier to supervise (``LiveCluster`` or ``MemcachedCluster``).
    engine:
        The shared decision engine; feed its profiling window from the
        request path (``generator.key_observer = engine.observe_many``).
    master:
        An existing Master to execute plans through; built from
        ``cluster`` when omitted.
    clock:
        Monotonic-seconds source.  Scenario runs pass the load
        generator's run clock so migration timestamps land directly on
        the load timeline; the default is ``time.monotonic``.
    node_stopper:
        Called with each retired node's name after a warm scale-in so
        the OS process actually drains away.
    provisioner:
        Called with a node count before a scale-out; must return the
        names of freshly provisioned (inactive) nodes ready for
        ``plan_scale_out``.  Scale-outs are skipped when absent.
    """

    def __init__(
        self,
        cluster: Any,
        engine: ScalingEngine,
        master: Master | None = None,
        config: ControlPlaneConfig | None = None,
        clock: Callable[[], float] | None = None,
        node_stopper: Callable[[str], None] | None = None,
        provisioner: Callable[[int], Iterable[str]] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.config = config or ControlPlaneConfig()
        self.master = master if master is not None else Master(cluster)
        self.clock = clock if clock is not None else time.monotonic
        self.node_stopper = node_stopper
        self.provisioner = provisioner
        self.telemetry = telemetry or NULL_TELEMETRY
        self._admin = AdminServer(
            self, self.config.admin_host, self.config.admin_port
        )
        self._loop = EventLoopThread(name="controlplane-admin")
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._command: dict[str, Any] | None = None
        self._migrating = False
        self._started_at = 0.0
        self._rate = 0.0
        self._polls = 0
        self._poll_failures = 0
        self._last_counters: int | None = None
        self._last_poll_at: float | None = None
        self.events: list[dict[str, Any]] = []
        self.migrations: list[dict[str, Any]] = []
        metrics = self.telemetry.metrics
        self._c_polls = metrics.counter(
            "controlplane_polls_total", "Stat-poll cycles completed"
        )
        self._g_members = metrics.gauge(
            "controlplane_members", "Active nodes under supervision"
        )
        self._g_rate = metrics.gauge(
            "controlplane_request_rate_rps",
            "Smoothed request rate measured from wire counters",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, auto_poll: bool = True) -> "ControlPlane":
        """Start the admin API and (optionally) the control thread.

        ``auto_poll=False`` starts only the admin surface; commands
        queue until :meth:`step` is called -- the deterministic mode the
        tests drive.
        """
        self._started_at = self.clock()
        self._loop.start()
        self._loop.call(self._admin.start(), timeout=10.0)
        if auto_poll and self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="controlplane-poll", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the control thread and the admin API; idempotent."""
        self._stop.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=30.0)
        if self._loop.running:
            self._loop.call(self._admin.stop(), timeout=10.0)
            self._loop.stop()

    @property
    def admin_endpoint(self) -> tuple[str, int]:
        """The admin API's bound ``(host, port)``."""
        return self._admin.endpoint

    def __enter__(self) -> "ControlPlane":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self.step()
            self._wake.wait(timeout=self.config.poll_interval_s)
            self._wake.clear()

    def step(self) -> None:
        """One control iteration: drain a command, poll, evaluate."""
        with self._lock:
            command, self._command = self._command, None
        if command is not None:
            self._execute(command)
        rate = self._poll_rate()
        active = len(self.cluster.active_members)
        self._polls += 1
        self._c_polls.inc()
        self._g_members.set(active)
        self._g_rate.set(round(rate, 3))
        tick = self.engine.evaluate(
            rate, active, now=self.clock(), busy=self._migrating
        )
        if tick is None:
            return
        decision = tick.decision
        self._event(
            "decision",
            target_nodes=decision.target_nodes,
            current_nodes=decision.current_nodes,
            request_rate=round(decision.request_rate, 1),
            act=tick.act,
            held_reason=tick.held_reason,
            reason=decision.reason,
        )
        if tick.act:
            self._execute(
                {
                    "target": decision.target_nodes,
                    "source": "autoscaler",
                    "reason": decision.reason,
                }
            )

    def _poll_rate(self) -> float:
        """The smoothed request rate from active-node wire counters."""
        try:
            total = self._poll_counters()
        except (TransportError, WireProtocolError, OSError) as exc:
            # A node mid-retirement may refuse the stats call; keep the
            # previous estimate rather than feeding the engine a zero.
            self._poll_failures += 1
            self._event("poll_failed", error=str(exc))
            return self._rate
        now = self.clock()
        last_total, last_at = self._last_counters, self._last_poll_at
        self._last_counters, self._last_poll_at = total, now
        if last_total is None or last_at is None or now <= last_at:
            return self._rate
        sample = max(0, total - last_total) / (now - last_at)
        alpha = self.config.rate_smoothing
        self._rate = (
            sample
            if self._polls <= 1
            else (1.0 - alpha) * self._rate + alpha * sample
        )
        return self._rate

    def _poll_counters(self) -> int:
        """Request-counter sum over the active members only."""
        total = 0
        for name in list(self.cluster.active_members):
            node = self.cluster.nodes[name]
            wire = getattr(node, "wire_stats", None)
            if wire is not None:
                stats = wire()
                total += (
                    stats.get("get_hits", 0)
                    + stats.get("get_misses", 0)
                    + stats.get("cmd_set", 0)
                )
            else:
                counters = node.stats
                total += (
                    counters.get_hits + counters.get_misses + counters.sets
                )
        return total

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, command: dict[str, Any]) -> None:
        with self._lock:
            self._migrating = True
        try:
            drain = command.get("drain")
            current = len(self.cluster.active_members)
            if drain is not None:
                if drain not in self.cluster.active_members:
                    self._event("drain_skipped", node=drain)
                    return
                self._scale_in(command, [drain])
                return
            target = int(command["target"])
            if target == current:
                self._event("noop", target_nodes=target)
                return
            if target < current:
                retiring = self.master.choose_retiring(current - target)
                self._scale_in(command, retiring)
            else:
                self._scale_out(command, target - current)
        finally:
            with self._lock:
                self._migrating = False

    def _scale_in(
        self, command: dict[str, Any], retiring: list[str]
    ) -> None:
        plan = self.master.plan_scale_in(retiring)
        killed_at = self.clock()
        report = self.master.execute(plan)
        executed_at = self.clock()
        if self.node_stopper is not None:
            for name in plan.retiring:
                self.node_stopper(name)
        self._record_migration(
            command,
            action="scale_in",
            changed=list(plan.retiring),
            outcome=report.outcome,
            items_exported=report.items_exported,
            items_imported=report.items_imported,
            membership_after=list(report.membership_after),
            killed_at_s=killed_at,
            executed_at_s=executed_at,
        )

    def _scale_out(self, command: dict[str, Any], count: int) -> None:
        if self.provisioner is None:
            self._event(
                "scale_out_skipped",
                wanted=count,
                reason="no provisioner configured",
            )
            return
        new_names = list(self.provisioner(count))
        plan = self.master.plan_scale_out(new_names)
        killed_at = self.clock()
        report = self.master.execute(plan)
        executed_at = self.clock()
        self._record_migration(
            command,
            action="scale_out",
            changed=new_names,
            outcome=report.outcome,
            items_exported=report.items_exported,
            items_imported=report.items_imported,
            membership_after=list(report.membership_after),
            killed_at_s=killed_at,
            executed_at_s=executed_at,
        )

    def _record_migration(
        self, command: dict[str, Any], **fields: Any
    ) -> None:
        record: dict[str, Any] = {
            "source": command.get("source", "admin"),
            "reason": command.get("reason", ""),
            **fields,
        }
        record["killed_at_s"] = round(record["killed_at_s"], 3)
        record["executed_at_s"] = round(record["executed_at_s"], 3)
        self.migrations.append(record)
        self.telemetry.metrics.counter(
            "controlplane_scale_actions_total",
            "Executed scale actions by direction and source",
            action=record["action"],
            source=record["source"],
        ).inc()
        self._event(
            record["action"],
            source=record["source"],
            changed=record["changed"],
            outcome=record["outcome"],
        )

    # ------------------------------------------------------------------
    # Admin surface (called from the admin loop thread)
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Cached daemon state; never touches the wire."""
        with self._lock:
            pending = self._command
            migrating = self._migrating
        return {
            "uptime_s": round(self.clock() - self._started_at, 3),
            "members": sorted(self.cluster.active_members),
            "migrating": migrating,
            "pending_command": dict(pending) if pending else None,
            "request_rate_rps": round(self._rate, 3),
            "polls": self._polls,
            "poll_failures": self._poll_failures,
            "engine": self.engine.snapshot(),
            "migrations": [dict(m) for m in self.migrations],
            "events": [dict(e) for e in self.events[-20:]],
        }

    def metrics_text(self) -> str:
        """The daemon's metric families in Prometheus text format."""
        metrics = self.telemetry.metrics
        if not getattr(metrics, "enabled", False):
            return "# controlplane telemetry disabled\n"
        from repro.obs.export import to_prometheus

        return to_prometheus(metrics)

    def request_scale(self, target: int) -> dict[str, Any]:
        """Queue a manual resize to ``target`` nodes (admin POST /scale)."""
        if isinstance(target, bool) or not isinstance(target, int):
            raise ConfigurationError("target must be an integer")
        if target < 1:
            raise ConfigurationError("target must be >= 1")
        if target > len(self.cluster.nodes):
            raise ConfigurationError(
                f"target {target} exceeds the {len(self.cluster.nodes)} "
                "known nodes"
            )
        with self._lock:
            if self._migrating or self._command is not None:
                raise ScaleInProgressError(
                    "a scale command is already in flight"
                )
            self._command = {"target": target, "source": "admin"}
        self._wake.set()
        return {"accepted": True, "target": target}

    def request_drain(self, node: str) -> dict[str, Any]:
        """Queue the retirement of one named node (POST /drain/<node>)."""
        if node not in self.cluster.active_members:
            raise KeyError(node)
        if len(self.cluster.active_members) <= 1:
            raise ConfigurationError("cannot drain the last node")
        with self._lock:
            if self._migrating or self._command is not None:
                raise ScaleInProgressError(
                    "a scale command is already in flight"
                )
            self._command = {"drain": node, "source": "admin"}
        self._wake.set()
        return {"accepted": True, "drain": node}

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _event(self, kind: str, **fields: Any) -> None:
        entry: dict[str, Any] = {
            "type": kind,
            "at_s": round(self.clock() - self._started_at, 3),
            **fields,
        }
        self.events.append(entry)
        if len(self.events) > EVENT_LOG_LIMIT:
            del self.events[: len(self.events) - EVENT_LOG_LIMIT]
        self.telemetry.tracer.event(f"controlplane.{kind}", **fields)
