"""End-to-end control-plane scenario: the paper's story on real sockets.

:func:`run_controlplane_scenario` is the CI-facing runner (mirroring
``run_proxy_chaos``): boot a multi-process cluster, seed it, keep an
open-loop tape flowing, and let the **control plane decide for itself**
when to scale -- no scripted ``migrate_at`` moment.  The load
generator's key stream feeds the engine's profiling window, the daemon's
stat polls supply the request rate, and the engine's hysteresis must
confirm the decision before the Master executes the three-phase
FuseCache scale-in mid-traffic.  The admin API is probed over real HTTP
while the migration happens, and the report carries the measured
``killed_at -> recovered_at`` degradation window plus the decision that
caused it.

The induced decision is honest: the tier starts over-provisioned for
the offered rate (``db_capacity_rps`` far above it), so Eq. (1) wants a
near-zero hit rate, the profiled working set fits a smaller tier, and
the AutoScaler's own arithmetic -- bounded by ``min_nodes`` -- lands on
``nodes - retire``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from repro.controlplane.daemon import ControlPlane, ControlPlaneConfig
from repro.core.autoscaler import (
    AutoScaler,
    AutoScalerConfig,
    ScalingEngine,
    ScalingEngineConfig,
)
from repro.core.master import Master
from repro.errors import ConfigurationError
from repro.loadgen.driver import LoadGenerator
from repro.loadgen.runner import (
    DEFAULT_MEMORY_PER_NODE,
    join_generator,
    run_generator_thread,
    seed_keys,
)
from repro.loadgen.schedule import build_schedule
from repro.net.cluster import LiveCluster
from repro.net.procs import ProcessClusterHarness
from repro.obs import create_telemetry

__all__ = [
    "ControlPlaneScenarioResult",
    "run_controlplane_scenario",
]


@dataclass
class ControlPlaneScenarioResult:
    """Everything one scenario run measured, JSON-serialisable."""

    nodes: int
    retire: int
    offered_rate: float
    duration_s: float
    seed: int
    decision: dict[str, Any] | None
    migration: dict[str, Any] | None
    degradation: dict[str, Any]
    admin: dict[str, Any]
    engine: dict[str, Any]
    load: dict[str, Any]
    trace_spans: int
    elapsed_s: float
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every acceptance check held."""
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (the ``--json`` artifact)."""
        return {
            "nodes": self.nodes,
            "retire": self.retire,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "decision": self.decision,
            "migration": self.migration,
            "degradation": dict(self.degradation),
            "admin": dict(self.admin),
            "engine": dict(self.engine),
            "load": dict(self.load),
            "trace_spans": self.trace_spans,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "failures": list(self.failures),
        }


def _http(
    method: str,
    url: str,
    body: bytes | None = None,
    timeout: float = 5.0,
) -> tuple[int, bytes]:
    """One admin-API round trip; HTTP errors return their status."""
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()


def _probe_admin(endpoint: tuple[str, int]) -> dict[str, Any]:
    """Exercise the admin surface mid-load; returns the verdict block."""
    host, port = endpoint
    base = f"http://{host}:{port}"
    verdict: dict[str, Any] = {
        "endpoint": f"{host}:{port}",
        "status_ok": False,
        "metrics_ok": False,
        "rejects_malformed": False,
    }
    status_code, status_body = _http("GET", f"{base}/status")
    if status_code == 200:
        payload = json.loads(status_body.decode("utf-8"))
        verdict["status_ok"] = "members" in payload and "engine" in payload
        verdict["members"] = payload.get("members")
        verdict["request_rate_rps"] = payload.get("request_rate_rps")
    metrics_code, metrics_body = _http("GET", f"{base}/metrics")
    metrics_text = metrics_body.decode("utf-8", "replace")
    verdict["metrics_ok"] = (
        metrics_code == 200 and "controlplane_polls_total" in metrics_text
    )
    verdict["metrics_bytes"] = len(metrics_body)
    bad_code, _ = _http("POST", f"{base}/scale", body=b"not json")
    verdict["rejects_malformed"] = bad_code == 400
    return verdict


def run_controlplane_scenario(
    nodes: int = 4,
    retire: int = 1,
    rate: float = 600.0,
    duration_s: float = 15.0,
    seed: int = 7,
    num_keys: int = 3000,
    set_fraction: float = 0.1,
    value_bytes: int = 64,
    memory_per_node: int = DEFAULT_MEMORY_PER_NODE,
    poll_interval_s: float = 0.5,
    evaluate_interval_s: float = 1.0,
    confirm_rounds: int = 2,
    min_window: int = 1500,
    cooldown_s: float = 60.0,
    timeout_s: float = 5.0,
    trace_jsonl: str | None = None,
) -> ControlPlaneScenarioResult:
    """Induce one autoscaler-decided live scale-in and measure it.

    Returns a result whose ``ok`` folds in: the engine (not a script)
    decided the scale-in after ``confirm_rounds`` confirmations; the
    migration completed warm; the degradation window was measured on
    the load timeline; the admin API answered status/metrics and
    rejected a malformed body; and no wire-protocol error leaked into
    the load stream.
    """
    if nodes < 3:
        raise ConfigurationError("the scenario needs at least 3 nodes")
    if not 0 < retire < nodes - 1:
        raise ConfigurationError(
            f"retire must leave >= 2 nodes, got {retire} of {nodes}"
        )
    started_wall = time.perf_counter()
    schedule = build_schedule(
        rate,
        duration_s,
        seed=seed,
        num_keys=num_keys,
        set_fraction=set_fraction,
        value_bytes=value_bytes,
    )
    telemetry = create_telemetry("controlplane")
    engine = ScalingEngine(
        AutoScaler(
            AutoScalerConfig(
                # The tier is deliberately over-provisioned for the
                # offered rate, so Eq. (1) asks for a near-zero hit
                # rate and the engine's own arithmetic scales in.
                db_capacity_rps=rate * 10.0,
                node_memory_bytes=memory_per_node,
                bytes_per_item=2.0 * value_bytes,
                min_nodes=nodes - retire,
                max_nodes=nodes,
            ),
            telemetry=telemetry,
        ),
        ScalingEngineConfig(
            evaluate_interval_s=evaluate_interval_s,
            min_window=min_window,
            confirm_rounds=confirm_rounds,
            cooldown_s=cooldown_s,
        ),
    )
    failures: list[str] = []
    names = [f"proc-{index:02d}" for index in range(nodes)]
    with ProcessClusterHarness(names, memory_per_node) as harness:
        live = LiveCluster(harness.endpoints, timeout_s=timeout_s)
        control: ControlPlane | None = None
        try:
            seed_keys(live, [op.key for op in schedule], value_bytes)
            generator = LoadGenerator(
                harness.endpoints,
                schedule,
                timeout_s=timeout_s,
                key_observer=engine.observe_many,
            )
            master = Master(live, telemetry=telemetry)
            master.subscribe_membership(generator.set_membership)
            thread, failure = run_generator_thread(generator)
            if not generator.started.wait(timeout=30.0):
                raise ConfigurationError("load generator failed to start")
            control = ControlPlane(
                live,
                engine,
                master=master,
                config=ControlPlaneConfig(poll_interval_s=poll_interval_s),
                clock=generator.now,
                node_stopper=harness.stop_node,
                telemetry=telemetry,
            )
            control.start()
            # Probe the admin surface while traffic flows and before
            # the decision can land (the window is still filling).
            admin = _probe_admin(control.admin_endpoint)
            # Wait for the engine's confirmed decision to execute.
            decision_deadline = duration_s * 0.9
            while (
                not control.migrations
                and generator.now() < decision_deadline
            ):
                time.sleep(poll_interval_s / 2.0)
            join_generator(thread, failure, duration_s)
        finally:
            if control is not None:
                control.stop()
            live.close()

    migration = dict(control.migrations[0]) if control.migrations else None
    degradation: dict[str, Any] = {
        "killed_at_s": None,
        "recovered_at_s": None,
        "window_s": None,
        "errors_in_window": 0,
    }
    decision: dict[str, Any] | None = None
    if migration is None:
        failures.append("the engine never executed a scale decision")
    else:
        killed_at = migration["killed_at_s"]
        window_errors = [
            t for t, _ in generator.error_timeline if t >= killed_at
        ]
        recovered_at = max([migration["executed_at_s"], *window_errors])
        degradation = {
            "killed_at_s": killed_at,
            "recovered_at_s": round(recovered_at, 3),
            "window_s": round(recovered_at - killed_at, 3),
            "errors_in_window": len(window_errors),
        }
        if migration["source"] != "autoscaler":
            failures.append(
                f"scale-in came from {migration['source']!r}, "
                "not the autoscaler"
            )
        if migration["outcome"] != "warm":
            failures.append(f"migration outcome {migration['outcome']!r}")
        if len(migration["changed"]) != retire:
            failures.append(
                f"retired {migration['changed']}, wanted {retire} nodes"
            )
    confirmed = [tick for tick in engine.history if tick.act]
    if confirmed:
        acted = confirmed[0].decision
        decision = {
            "target_nodes": acted.target_nodes,
            "current_nodes": acted.current_nodes,
            "p_min": round(acted.p_min, 4),
            "request_rate": round(acted.request_rate, 1),
            "required_bytes": acted.required_bytes,
            "reason": acted.reason,
            "confirm_rounds": confirm_rounds,
            "source": "autoscaler",
        }
    for check in ("status_ok", "metrics_ok", "rejects_malformed"):
        if not admin.get(check):
            failures.append(f"admin API check failed: {check}")
    load = generator.report(
        "controlplane", rate, duration_s, seed
    ).to_dict()
    if load["ops_ok"] == 0:
        failures.append("no operation completed")
    if load["wire_errors"]:
        failures.append(f"{load['wire_errors']} wire errors in the stream")
    trace_spans = len(telemetry.tracer.roots)
    if trace_jsonl:
        from repro.obs.export import write_jsonl

        write_jsonl(
            trace_jsonl,
            tracer=telemetry.tracer,
            metrics=telemetry.metrics,
            meta={"scenario": "controlplane", "seed": seed},
        )
    return ControlPlaneScenarioResult(
        nodes=nodes,
        retire=retire,
        offered_rate=rate,
        duration_s=duration_s,
        seed=seed,
        decision=decision,
        migration=migration,
        degradation=degradation,
        admin=admin,
        engine=engine.snapshot(),
        load=load,
        trace_spans=trace_spans,
        elapsed_s=round(time.perf_counter() - started_wall, 3),
        failures=failures,
    )
