"""ElMem's core contribution (Sections III and IV of the paper).

- :mod:`repro.core.fusecache` -- the FuseCache top-n selection across k
  MRU-sorted lists, plus the sort-merge and heap k-way-merge baselines.
- :mod:`repro.core.autoscaler` -- Q1: when and how much to scale (Eq. 1 +
  stack-distance memory sizing).
- :mod:`repro.core.scoring` -- Q2: which node(s) to retire (median-hotness
  scores weighted by slab page fractions).
- :mod:`repro.core.agent` / :mod:`repro.core.master` -- the decentralised
  migration protocol (metadata transfer, hotness comparison, data
  migration).
- :mod:`repro.core.policies` -- migration policies compared in the paper:
  ElMem, Naive, CacheScale, and the no-migration baseline.
- :mod:`repro.core.elmem` -- the :class:`ElMemController` facade tying the
  AutoScaler, Master, and Agents together.
"""

from repro.core.autoscaler import AutoScaler, AutoScalerConfig, ScalingDecision
from repro.core.elmem import ElMemController
from repro.core.fusecache import (
    FuseCacheResult,
    fuse_cache,
    fuse_cache_detailed,
    kway_merge_top_n,
    sort_merge_top_n,
)
from repro.core.master import Master, MigrationReport
from repro.core.retry import RetryPolicy
from repro.core.scoring import score_nodes

__all__ = [
    "AutoScaler",
    "AutoScalerConfig",
    "ElMemController",
    "FuseCacheResult",
    "Master",
    "MigrationReport",
    "RetryPolicy",
    "ScalingDecision",
    "fuse_cache",
    "fuse_cache_detailed",
    "kway_merge_top_n",
    "score_nodes",
    "sort_merge_top_n",
]
