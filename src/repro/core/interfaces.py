"""Structural interfaces between the control plane and the cache tier.

The Master, the migration policies, and the scoring step were written
against the in-process :class:`~repro.memcached.cluster.MemcachedCluster`;
the live TCP tier (:mod:`repro.net`) provides the same surface over
sockets.  These :class:`~typing.Protocol` classes pin down exactly which
slice of the cache tier the control plane is allowed to touch, so both
implementations satisfy one contract and the Master stays oblivious to
whether a node is a Python object or a socket away.

Everything is structural (no registration, no inheritance): an object
with the right attributes *is* a :class:`CacheNode`.  Members are
declared read-only wherever the control plane only reads them, which
lets implementations back them with plain attributes, properties, or
frozen dataclasses alike.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Protocol

from repro.hashing.ketama import ConsistentHashRing
from repro.memcached.node import MigratedItem


class CacheItem(Protocol):
    """The item metadata planners read (via ``peek`` / MRU walks)."""

    @property
    def key(self) -> str: ...

    @property
    def last_access(self) -> float: ...

    @property
    def value_size(self) -> int: ...

    @property
    def value(self) -> Any: ...


class SlabClassView(Protocol):
    """Read-only geometry of one slab class."""

    @property
    def class_id(self) -> int: ...

    @property
    def chunk_size(self) -> int: ...

    @property
    def pages(self) -> int: ...

    @property
    def chunks_per_page(self) -> int: ...

    @property
    def total_chunks(self) -> int: ...


class SlabView(Protocol):
    """Read-only slab-allocator view (FuseCache capacity sizing)."""

    @property
    def classes(self) -> Sequence[SlabClassView]: ...

    @property
    def free_pages(self) -> int: ...


class CacheNode(Protocol):
    """One cache node as the Agent, the Master, and scoring see it.

    Implemented in-process by :class:`~repro.memcached.node.MemcachedNode`
    and over TCP by :class:`~repro.net.cluster.RemoteNode`.
    """

    @property
    def name(self) -> str: ...

    def __len__(self) -> int: ...

    @property
    def slabs(self) -> SlabView: ...

    def active_class_ids(self) -> list[int]: ...

    def dump_timestamps(self, class_id: int) -> list[tuple[str, float]]: ...

    def items_in_mru_order(self, class_id: int) -> Sequence[CacheItem]: ...

    def median_timestamp(self, class_id: int) -> float | None: ...

    def page_fractions(self) -> dict[int, float]: ...

    def peek(self, key: str) -> CacheItem | None: ...

    def get(self, key: str, now: float) -> Any | None: ...

    def set(
        self, key: str, value: Any, value_size: int, now: float
    ) -> bool: ...

    def delete(self, key: str) -> bool: ...

    def flush_all(self) -> None: ...

    def export_items(self, keys: Iterable[str]) -> list[MigratedItem]: ...

    def batch_import(
        self,
        migrated: Iterable[MigratedItem],
        mode: str = "merge",
        now: float = 0.0,
    ) -> int: ...


class CacheCluster(Protocol):
    """The cluster surface the Master and the policies drive.

    Implemented in-process by
    :class:`~repro.memcached.cluster.MemcachedCluster` and over TCP by
    :class:`~repro.net.cluster.LiveCluster`.
    """

    @property
    def vnodes(self) -> int: ...

    @property
    def nodes(self) -> Mapping[str, CacheNode]: ...

    @property
    def ring(self) -> ConsistentHashRing: ...

    @property
    def active_members(self) -> frozenset[str]: ...

    @property
    def active_nodes(self) -> Sequence[CacheNode]: ...

    # -- membership ------------------------------------------------------

    def provision(self, name: str) -> CacheNode: ...

    def activate(self, name: str) -> None: ...

    def deactivate(self, name: str) -> None: ...

    def destroy(self, name: str) -> None: ...

    def set_membership(self, names: Iterable[str]) -> None: ...

    def ring_for(self, members: Iterable[str]) -> ConsistentHashRing: ...

    # -- routing + client operations -------------------------------------

    def route(self, key: str) -> str: ...

    def route_many(self, keys: list[str]) -> list[str]: ...

    def get(self, key: str, now: float) -> Any | None: ...

    def set(
        self, key: str, value: Any, value_size: int, now: float
    ) -> bool: ...

    def delete(self, key: str) -> bool: ...

    def get_many(
        self, keys: Iterable[str], now: float
    ) -> list[Any | None]: ...

    def set_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float
    ) -> int: ...

    def delete_many(self, keys: Iterable[str]) -> int: ...

    def multiget(
        self, keys: Iterable[str], now: float
    ) -> tuple[dict[str, Any], list[str]]: ...
