"""When and how much to scale (Q1, Section III-B).

The AutoScaler derives the minimum Memcached hit rate that keeps the
database under its capacity ``r_DB`` for the incoming rate ``r``::

    r * (1 - p_min) < r_DB   =>   p_min > 1 - r_DB / r        (Eq. 1)

It then profiles the recent request trace with stack distances (MIMIR by
default) to find the memory achieving ``p_min``, and normalises by
per-node memory to obtain a node count.  The whole computation is
re-runnable every minute in well under a second, as the paper reports.

The autoscaling algorithm is a *pluggable module* in ElMem; this module
also provides :class:`ScheduledScalingPolicy`, which replays the explicit
scaling actions the paper's figures annotate (e.g. "10 -> 7 nodes at the
30-minute mark").
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.cache_analysis.mimir import MimirProfiler
from repro.cache_analysis.mrc import HitRateCurve, memory_for_hit_rate
from repro.cache_analysis.stack_distance import StackDistanceProfiler
from repro.errors import ConfigurationError
from repro.obs import NULL_TELEMETRY, Telemetry


def min_hit_rate(request_rate: float, db_capacity: float) -> float:
    """Eq. (1): the smallest hit rate keeping DB load under ``r_DB``."""
    if db_capacity <= 0:
        raise ConfigurationError("db_capacity must be positive")
    if request_rate < 0:
        raise ConfigurationError("request_rate must be non-negative")
    if request_rate <= db_capacity:
        return 0.0
    return 1.0 - db_capacity / request_rate


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome of one AutoScaler evaluation."""

    target_nodes: int
    current_nodes: int
    p_min: float
    required_bytes: int | None
    request_rate: float
    # Human-readable account of *why* this target was chosen; recorded
    # as a telemetry decision event so post-hoc analysis can attribute
    # every resize to its cause.
    reason: str = ""

    @property
    def delta(self) -> int:
        """Nodes to add (positive) or retire (negative)."""
        return self.target_nodes - self.current_nodes

    @property
    def is_scale_in(self) -> bool:
        """True when the decision removes nodes."""
        return self.delta < 0

    @property
    def is_scale_out(self) -> bool:
        """True when the decision adds nodes."""
        return self.delta > 0


@dataclass
class AutoScalerConfig:
    """Tuning knobs for the stack-distance AutoScaler.

    Attributes
    ----------
    db_capacity_rps:
        ``r_DB``; obtained by profiling the database (Section III-B).
    node_memory_bytes:
        Memory of one Memcached node.
    bytes_per_item:
        Average cached-item footprint used to convert the item-count
        hit-rate curve into bytes.
    min_nodes, max_nodes:
        Hard bounds on the tier size.
    hit_rate_margin:
        Safety margin added to ``p_min`` so the tier is not sized exactly
        at the knee.
    cold_misses:
        ``"exclude"`` (default) drops first-ever accesses from the
        window's hit-rate curve: the live cache is warm, so a finite
        window's cold misses are a censoring artifact that would make
        every target look unreachable.  ``"count"`` keeps them
        (pessimistic).
    window_requests:
        Profiling window size (the "recent history" of key requests).
    profiler:
        ``"mimir"`` (paper default, O(1) per request) or ``"exact"``.
    mimir_buckets:
        Aging buckets for the MIMIR profiler.
    """

    db_capacity_rps: float
    node_memory_bytes: int
    bytes_per_item: float
    min_nodes: int = 1
    max_nodes: int = 64
    hit_rate_margin: float = 0.01
    window_requests: int = 200_000
    profiler: str = "mimir"
    mimir_buckets: int = 128
    cold_misses: str = "exclude"

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ConfigurationError("need 1 <= min_nodes <= max_nodes")
        if self.profiler not in ("mimir", "exact"):
            raise ConfigurationError(f"unknown profiler {self.profiler!r}")
        if self.cold_misses not in ("exclude", "count"):
            raise ConfigurationError(
                f"unknown cold_misses policy {self.cold_misses!r}"
            )
        if not 0.0 <= self.hit_rate_margin < 1.0:
            raise ConfigurationError("hit_rate_margin must be in [0, 1)")


class AutoScaler:
    """Samples the key stream and produces :class:`ScalingDecision` s.

    The AutoScaler sits on one web server (requests are load balanced, so
    one server's sample reflects the popularity distribution) and relays
    decisions to the Master as hints.
    """

    def __init__(
        self,
        config: AutoScalerConfig,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry or NULL_TELEMETRY
        self._profiler = self._new_profiler()
        self.decisions_made = 0

    def _new_profiler(self):
        if self.config.profiler == "exact":
            return StackDistanceProfiler(self.config.window_requests)
        return MimirProfiler(self.config.mimir_buckets)

    @property
    def window_fill(self) -> int:
        """Requests accumulated in the current profiling window."""
        return self._profiler.requests_seen

    def observe(self, key: str) -> None:
        """Feed one requested key into the profiling window."""
        if (
            self.config.profiler == "exact"
            and self._profiler.requests_seen >= self.config.window_requests
        ):
            self.reset_window()
        self._profiler.record(key)

    def observe_many(self, keys: Iterable[str]) -> None:
        """Feed a batch of requested keys."""
        for key in keys:
            self.observe(key)

    def reset_window(self) -> None:
        """Start a fresh profiling window (e.g. each monitoring period)."""
        self._profiler = self._new_profiler()

    def hit_rate_curve(self) -> HitRateCurve:
        """The hit-rate curve of the current window.

        Cold (first-ever) accesses are dropped or kept according to the
        ``cold_misses`` config.
        """
        histogram, cold = self._profiler.histogram()
        if self.config.cold_misses == "exclude":
            cold = 0
        return HitRateCurve(histogram, cold)

    def decide(
        self,
        request_rate: float,
        current_nodes: int,
        now: float | None = None,
    ) -> ScalingDecision:
        """Evaluate Eq. (1) + the hit-rate curve into a target node count.

        When the target hit rate is unreachable within ``max_nodes`` (too
        many cold misses), the scaler provisions ``max_nodes`` -- more
        cache cannot help beyond the trace's reuse.  ``now`` (sim
        seconds) timestamps the telemetry decision event.
        """
        config = self.config
        p_min = min(
            min_hit_rate(request_rate, config.db_capacity_rps)
            + config.hit_rate_margin,
            0.999,
        )
        curve = self.hit_rate_curve()
        required = memory_for_hit_rate(curve, p_min, config.bytes_per_item)
        reachable = required is not None
        if required is None:
            # Unreachable target (cold misses dominate the window): size
            # for the full reusable working set -- memory beyond it
            # cannot add a single hit.
            required = int(curve.max_capacity * config.bytes_per_item)
        target = math.ceil(required / config.node_memory_bytes)
        if not reachable:
            # The window carries too little reuse signal to prove a
            # smaller tier suffices; never scale *in* on it.
            target = max(target, current_nodes)
        target = max(config.min_nodes, min(config.max_nodes, target))
        self.decisions_made += 1
        reason = (
            f"rate {request_rate:.0f} rps needs hit rate >= {p_min:.3f}; "
            f"curve says {required / (1 << 20):.1f} MiB"
        )
        if not reachable:
            reason += " (target unreachable in window; never scale in)"
        decision = ScalingDecision(
            target_nodes=target,
            current_nodes=current_nodes,
            p_min=p_min,
            required_bytes=required,
            request_rate=request_rate,
            reason=reason,
        )
        action = (
            "scale_in"
            if decision.is_scale_in
            else "scale_out" if decision.is_scale_out else "hold"
        )
        self.telemetry.tracer.event(
            "autoscaler.decision",
            sim_s=now,
            action=action,
            target_nodes=target,
            current_nodes=current_nodes,
            p_min=round(p_min, 4),
            request_rate=round(request_rate, 1),
            reachable=reachable,
            reason=reason,
        )
        metrics = self.telemetry.metrics
        metrics.counter(
            "autoscaler_decisions_total",
            "AutoScaler evaluations by resulting action",
            action=action,
        ).inc()
        metrics.gauge(
            "autoscaler_target_nodes",
            "Most recent AutoScaler node-count target",
        ).set(target)
        return decision


@dataclass
class ScheduledAction:
    """One pre-planned membership change at an absolute time."""

    at_time: float
    target_nodes: int
    fired: bool = field(default=False, compare=False)


class ScheduledScalingPolicy:
    """Replays explicit scaling actions (the paper's figure annotations).

    Example: ``ScheduledScalingPolicy([(1800, 7)])`` scales the tier to 7
    nodes at the 30-minute mark, like Fig. 6(a).
    """

    def __init__(self, actions: list[tuple[float, int]]) -> None:
        self.actions = [
            ScheduledAction(at_time, target)
            for at_time, target in sorted(actions)
        ]

    def pending_action(
        self, now: float, current_nodes: int
    ) -> ScalingDecision | None:
        """The next unfired action due at ``now``, as a ScalingDecision."""
        for action in self.actions:
            if action.fired or action.at_time > now:
                continue
            action.fired = True
            if action.target_nodes == current_nodes:
                return None
            return ScalingDecision(
                target_nodes=action.target_nodes,
                current_nodes=current_nodes,
                p_min=0.0,
                required_bytes=None,
                request_rate=0.0,
                reason=f"scheduled action at t={action.at_time:.0f}s",
            )
        return None


@dataclass
class ScalingEngineConfig:
    """Decision-loop policy shared by the simulator and the live daemon.

    Attributes
    ----------
    evaluate_interval_s:
        Minimum spacing between AutoScaler evaluations (the paper
        re-runs the computation every monitoring period).
    min_window:
        Do not evaluate before the profiling window has seen this many
        requests; a cold-dominated window makes every hit-rate target
        look unreachable and the working set look tiny.
    confirm_rounds:
        Consecutive same-direction decisions required before acting.
        ``1`` reproduces the simulator's historical behaviour (act on
        the first non-hold decision); live deployments use ``>= 2`` so
        measurement noise cannot flap the tier.
    cooldown_s:
        Quiet time after an action during which further decisions are
        recorded but never acted on, letting the tier settle and the
        window re-fill with post-migration traffic.
    """

    evaluate_interval_s: float = 60.0
    min_window: int = 50_000
    confirm_rounds: int = 1
    cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.evaluate_interval_s <= 0:
            raise ConfigurationError("evaluate_interval_s must be positive")
        if self.min_window < 0:
            raise ConfigurationError("min_window must be non-negative")
        if self.confirm_rounds < 1:
            raise ConfigurationError("confirm_rounds must be >= 1")
        if self.cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be non-negative")


@dataclass(frozen=True)
class EngineTick:
    """One evaluated decision plus the engine's act/hold verdict."""

    decision: ScalingDecision
    act: bool
    held_reason: str = ""


class ScalingEngine:
    """The AutoScaler's decision loop, shared by sim and live paths.

    Wraps an :class:`AutoScaler` with the gating that used to live
    inline in the simulator (evaluation interval, minimum window fill,
    no decisions while a migration is in flight) plus live-tier
    stabilisers: ``confirm_rounds`` hysteresis and a post-action
    cooldown.  The profiling window keeps accumulating across
    evaluations: MIMIR's aging buckets already discount stale accesses,
    and a short window would be cold-miss-dominated, starving Eq. (1)
    of reuse signal.

    Thread-safe: the live tier feeds :meth:`observe_many` from the load
    generator's loop thread while the control thread calls
    :meth:`evaluate`.  Time is always supplied by the caller (sim
    seconds or the live run clock); the engine never reads a clock.
    """

    def __init__(
        self,
        autoscaler: AutoScaler,
        config: ScalingEngineConfig | None = None,
    ) -> None:
        self.autoscaler = autoscaler
        self.config = config or ScalingEngineConfig()
        self._lock = threading.Lock()
        self._last_evaluation = float("-inf")
        self._last_action = float("-inf")
        self._streak_sign = 0
        self._streak = 0
        self.history: list[EngineTick] = []
        self.actions = 0

    # ------------------------------------------------------------------
    # Key-sample feed (any thread)
    # ------------------------------------------------------------------

    def observe(self, key: str) -> None:
        """Feed one requested key into the profiling window."""
        with self._lock:
            self.autoscaler.observe(key)

    def observe_many(self, keys: Iterable[str]) -> None:
        """Feed a batch of requested keys (one lock hold per batch)."""
        with self._lock:
            self.autoscaler.observe_many(keys)

    @property
    def window_fill(self) -> int:
        """Requests accumulated in the profiling window."""
        with self._lock:
            return self.autoscaler.window_fill

    # ------------------------------------------------------------------
    # The decision loop
    # ------------------------------------------------------------------

    def evaluate(
        self,
        request_rate: float,
        current_nodes: int,
        now: float,
        busy: bool = False,
    ) -> EngineTick | None:
        """One loop iteration: maybe decide, maybe act.

        Returns ``None`` when no evaluation happened (interval not
        elapsed, window not filled, or a migration in flight); otherwise
        an :class:`EngineTick` whose ``act`` flag says whether the
        caller should execute the decision now.
        """
        with self._lock:
            config = self.config
            if busy:
                return None
            if now - self._last_evaluation < config.evaluate_interval_s:
                return None
            if self.autoscaler.window_fill < config.min_window:
                return None
            self._last_evaluation = now
            decision = self.autoscaler.decide(
                request_rate, current_nodes, now=now
            )
            if decision.delta == 0:
                self._streak = 0
                self._streak_sign = 0
                tick = EngineTick(decision, act=False, held_reason="hold")
            else:
                sign = 1 if decision.delta > 0 else -1
                if sign == self._streak_sign:
                    self._streak += 1
                else:
                    self._streak_sign = sign
                    self._streak = 1
                if now - self._last_action < config.cooldown_s:
                    tick = EngineTick(
                        decision,
                        act=False,
                        held_reason=(
                            f"cooldown until t="
                            f"{self._last_action + config.cooldown_s:.0f}s"
                        ),
                    )
                elif self._streak < config.confirm_rounds:
                    tick = EngineTick(
                        decision,
                        act=False,
                        held_reason=(
                            f"confirming {self._streak}/"
                            f"{config.confirm_rounds}"
                        ),
                    )
                else:
                    tick = EngineTick(decision, act=True)
                    self._last_action = now
                    self._streak = 0
                    self._streak_sign = 0
                    self.actions += 1
            self.history.append(tick)
            return tick

    def snapshot(self) -> dict[str, object]:
        """JSON-friendly engine state for status surfaces."""
        with self._lock:
            last = self.history[-1] if self.history else None
            return {
                "window_fill": self.autoscaler.window_fill,
                "evaluations": len(self.history),
                "actions": self.actions,
                "streak": self._streak,
                "confirm_rounds": self.config.confirm_rounds,
                "cooldown_s": self.config.cooldown_s,
                "last_decision": (
                    None
                    if last is None
                    else {
                        "target_nodes": last.decision.target_nodes,
                        "current_nodes": last.decision.current_nodes,
                        "p_min": round(last.decision.p_min, 4),
                        "request_rate": round(
                            last.decision.request_rate, 1
                        ),
                        "act": last.act,
                        "held_reason": last.held_reason,
                        "reason": last.decision.reason,
                    }
                ),
            }
