"""The ElMem Master (Sections III-A, III-C, III-D).

The Master is the lightweight central controller: it receives autoscaling
hints, picks which node(s) to retire via median-hotness scoring, and
orchestrates the three-phase migration:

1. **Metadata transfer** -- retiring Agents hash their keys against the
   *retained* membership and ship ``(key, timestamp)`` lists (not values)
   to their targets.
2. **Hotness comparison** -- each retained Agent runs FuseCache over the
   incoming per-slab lists plus its own, yielding exactly how many items
   to pull from each retiring node.
3. **Data migration** -- retiring Agents pipe the chosen KV pairs to the
   retained nodes, whose Agents batch-import them, evicting colder local
   items.

Planning (:meth:`Master.plan_scale_in` / :meth:`Master.plan_scale_out`)
is separated from execution (:meth:`Master.execute`) so the simulator can
compute the migration at decision time, let the cluster keep serving for
the migration's duration, and only then apply the membership switch --
matching the paper's timeline where ElMem scales ~2 minutes after the
baseline would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.agent import Agent
from repro.core.fusecache import fuse_cache_detailed
from repro.core.interfaces import CacheCluster
from repro.core.retry import RetryPolicy
from repro.core.scoring import choose_nodes_to_retire
from repro.errors import (
    ConfigurationError,
    MigrationAbortedError,
    MigrationError,
    TransportError,
)
from repro.memcached.cluster import MemcachedCluster
from repro.netsim.transfer import Flow, NetworkModel
from repro.obs import NULL_SPAN, NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.hashing.ketama import ConsistentHashRing


@dataclass
class PhaseTimings:
    """Modeled wall-clock seconds per migration phase (paper V-B2).

    ``retry_s`` is filled in at *execution* time: backoff waits and the
    duration of failed flow attempts, which the paper's fault-free
    testbed never pays.
    """

    scoring_s: float = 0.0
    dump_s: float = 0.0
    metadata_transfer_s: float = 0.0
    fusecache_s: float = 0.0
    data_transfer_s: float = 0.0
    import_s: float = 0.0
    retry_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end migration overhead."""
        return (
            self.scoring_s
            + self.dump_s
            + self.metadata_transfer_s
            + self.fusecache_s
            + self.data_transfer_s
            + self.import_s
            + self.retry_s
        )

    def breakdown(self) -> dict[str, float]:
        """Named phase durations, for the overhead-breakdown benchmark."""
        return {
            "scoring": self.scoring_s,
            "hash_and_dump": self.dump_s,
            "metadata_transfer": self.metadata_transfer_s,
            "fusecache": self.fusecache_s,
            "data_migration": self.data_transfer_s,
            "import": self.import_s,
            "retries": self.retry_s,
            "total": self.total_s,
        }


@dataclass
class MigrationPlan:
    """A fully-computed migration, ready to execute.

    ``transfers[(src, dst)]`` lists the keys to move, hottest first.
    """

    kind: str  # "scale_in" | "scale_out"
    retiring: list[str]
    retained: list[str]
    new_nodes: list[str]
    transfers: dict[tuple[str, str], list[str]]
    timings: PhaseTimings
    import_mode: str | None = None  # overrides the Master's default
    # Keys each node deletes before imports arrive (Naive's room-making:
    # "the coldest x/n fraction of items of all nodes can be discarded").
    pre_deletes: dict[str, list[str]] = field(default_factory=dict)
    items_to_migrate: int = 0
    bytes_to_migrate: int = 0
    metadata_bytes: int = 0
    fusecache_rounds: int = 0
    fusecache_comparisons: int = 0
    # Telemetry span tree for this migration; NULL_SPAN when tracing is
    # off.  Opened at plan time, closed when execution finishes.
    span: object = field(default=NULL_SPAN, repr=False, compare=False)

    @property
    def duration_s(self) -> float:
        """Seconds from the scaling decision until membership can switch."""
        return self.timings.total_s


OUTCOME_WARM = "warm"
OUTCOME_PARTIAL = "partial"
OUTCOME_COLD = "cold"


@dataclass
class MigrationReport:
    """What actually happened when a plan was executed.

    Under fault injection the report is the primary experimental output:
    it records every retry, every flow that failed for good, every pair
    skipped because a node died, and whether the scaling action completed
    ``"warm"`` (every planned pair moved), ``"partial"`` (some data
    arrived), or ``"cold"`` (the warm-up was lost but membership still
    switched -- the paper's baseline behaviour, correctness preserved).
    """

    plan: MigrationPlan
    items_exported: int = 0
    items_imported: int = 0
    membership_after: list[str] = field(default_factory=list)
    # (src, dst) pairs whose transfer was skipped because a node died
    # between planning and execution.
    skipped_pairs: list[tuple[str, str]] = field(default_factory=list)
    # (src, dst) pairs whose flow kept failing until retries ran out.
    failed_flows: list[tuple[str, str]] = field(default_factory=list)
    # (src, dst) pairs never attempted because the deadline fired first.
    unattempted_pairs: list[tuple[str, str]] = field(default_factory=list)
    completed_pairs: int = 0
    retries: int = 0
    retry_time_s: float = 0.0
    outcome: str = OUTCOME_WARM
    abort_reason: str | None = None
    executed_at: float = 0.0
    # Simulated seconds phase 3 actually took, retries and stalls included.
    actual_duration_s: float = 0.0

    @property
    def degraded(self) -> bool:
        """True unless every planned pair migrated cleanly."""
        return self.outcome != OUTCOME_WARM

    def classify(self) -> str:
        """Derive :attr:`outcome` from the recorded pair bookkeeping."""
        lost = (
            len(self.skipped_pairs)
            + len(self.failed_flows)
            + len(self.unattempted_pairs)
        )
        if lost == 0:
            return OUTCOME_WARM
        if self.completed_pairs == 0:
            return OUTCOME_COLD
        return OUTCOME_PARTIAL


class Master:
    """Central migration coordinator for one Memcached cluster.

    Parameters
    ----------
    cluster:
        The Memcached tier to manage.
    network:
        Transfer-time model; defaults to a 1 Gbit fabric.
    import_mode:
        ``"merge"`` keeps MRU lists timestamp-sorted (default);
        ``"prepend"`` reproduces the paper's head insertion exactly.
    dump_rate_items_s / import_rate_items_s:
        Modeled throughput of the timestamp-dump+hash and batch-import
        commands (local CPU/disk cost).
    scoring_time_per_node_s:
        Modeled cost of collecting median reports from one node.
    comparison_time_s:
        Modeled cost per FuseCache timestamp comparison.
    retry_policy:
        Backoff schedule for failed data flows (phase 3).
    deadline_s:
        Budget for phase 3, measured from the moment :meth:`execute`
        starts.  Once retries, stalls, and timeouts push the modeled
        clock past it, the remaining warm-up is abandoned and the
        migration degrades to cold scaling (``on_deadline="degrade"``,
        the default) or raises
        :class:`~repro.errors.MigrationAbortedError`
        (``on_deadline="raise"``).  ``None`` disables the deadline.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; consulted
        for node stalls and advanced as execution's modeled clock moves,
        so faults scheduled mid-migration land mid-migration.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  When enabled, every
        planned migration records a span tree
        (``migration -> plan -> scoring/dump/fusecache`` at plan time,
        ``import``/per-pair/``switch`` at execution) plus counters and
        phase-duration histograms; disabled (the default) it is all
        no-ops.
    strict_mode:
        When true, a :class:`~repro.check.strict.StrictChecker` runs the
        cheap invariant validators after each migration phase: LRU-list
        integrity and slab accounting on every node a plan touches
        (plan and import phases), target-ring structure at plan time,
        and live-ring consistency after the membership switch.  A
        failing check raises
        :class:`~repro.errors.InvariantViolation` with a structured
        diff.  MRU timestamp-monotonicity is only enforced while every
        executed import has used ``merge`` mode -- ``prepend`` (the
        paper's head insertion) deliberately gives that ordering up.
    """

    def __init__(
        self,
        cluster: CacheCluster,
        network: NetworkModel | None = None,
        import_mode: str = "merge",
        dump_rate_items_s: float = 100_000.0,
        import_rate_items_s: float = 500_000.0,
        scoring_time_per_node_s: float = 0.2,
        comparison_time_s: float = 2e-6,
        retry_policy: RetryPolicy | None = None,
        deadline_s: float | None = None,
        on_deadline: str = "degrade",
        fault_injector: "FaultInjector | None" = None,
        telemetry: Telemetry | None = None,
        strict_mode: bool = False,
    ) -> None:
        if on_deadline not in ("degrade", "raise"):
            raise ConfigurationError(
                f"on_deadline must be 'degrade' or 'raise', got {on_deadline!r}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        self.cluster = cluster
        self.network = network or NetworkModel()
        self.import_mode = import_mode
        self.dump_rate_items_s = dump_rate_items_s
        self.import_rate_items_s = import_rate_items_s
        self.scoring_time_per_node_s = scoring_time_per_node_s
        self.comparison_time_s = comparison_time_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.deadline_s = deadline_s
        self.on_deadline = on_deadline
        self.fault_injector = fault_injector
        self.telemetry = telemetry or NULL_TELEMETRY
        self.strict_mode = strict_mode
        self.strict_checker = None
        if strict_mode:
            if not isinstance(cluster, MemcachedCluster):
                raise ConfigurationError(
                    "strict_mode requires an in-process MemcachedCluster; "
                    "the invariant validators read private cache state a "
                    "live cluster cannot expose"
                )
            from repro.check.strict import StrictChecker

            self.strict_checker = StrictChecker(
                cluster, telemetry=self.telemetry
            )
        # Whether every MRU list is still timestamp-sorted: true until a
        # non-merge import lands, after which the sortedness invariant is
        # no longer checkable (the paper's prepend import gives it up).
        self._mru_sorted = True
        # Membership-change consumers (proxy routers, dashboards):
        # called with the post-switch member list after every migration.
        self._membership_listeners: list[Callable[[list[str]], None]] = []

    def subscribe_membership(
        self, listener: Callable[[list[str]], None]
    ) -> None:
        """Register a callback for post-switch membership changes.

        ``listener`` receives the sorted active member list after every
        executed migration's switch phase -- the hook a proxy tier uses
        to swap its routing ring the moment the Master commits a scale
        event.  Listeners are invoked synchronously in subscription
        order; a listener that raises aborts the migration report with
        its own exception (the switch itself has already committed), so
        listeners are expected to be robust.
        """
        self._membership_listeners.append(listener)

    def unsubscribe_membership(
        self, listener: Callable[[list[str]], None]
    ) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._membership_listeners:
            self._membership_listeners.remove(listener)

    def _notify_membership(self, members: list[str]) -> None:
        for listener in list(self._membership_listeners):
            listener(list(members))

    def agent(self, name: str) -> Agent:
        """The Agent on node ``name``."""
        return Agent(self.cluster.nodes[name])

    # ------------------------------------------------------------------
    # Q2: which nodes to retire
    # ------------------------------------------------------------------

    def choose_retiring(self, count: int) -> list[str]:
        """Pick ``count`` nodes with the coldest median-hotness scores."""
        return choose_nodes_to_retire(self.cluster.active_nodes, count)

    # ------------------------------------------------------------------
    # Scale-in planning
    # ------------------------------------------------------------------

    def plan_scale_in(
        self, retiring: list[str], include_scoring: bool = True, now: float = 0.0
    ) -> MigrationPlan:
        """Compute the three-phase migration for retiring ``retiring``.

        Runs phases 1 and 2 for real (metadata grouping + FuseCache) and
        *models* their wall-clock cost; phase 3 (the bulk data move) is
        deferred to :meth:`execute`.  ``now`` anchors the migration's
        telemetry span tree on the sim clock.
        """
        active = set(self.cluster.active_members)
        unknown = [name for name in retiring if name not in active]
        if unknown:
            raise MigrationError(f"cannot retire inactive nodes: {unknown}")
        retained = sorted(active - set(retiring))
        if not retained:
            raise MigrationError("cannot retire every node")

        timings = PhaseTimings()
        if include_scoring:
            timings.scoring_s = self.scoring_time_per_node_s * len(active)

        target_ring = self.cluster.ring_for(retained)
        plan = MigrationPlan(
            kind="scale_in",
            retiring=sorted(retiring),
            retained=retained,
            new_nodes=[],
            transfers={},
            timings=timings,
        )
        span = self.telemetry.tracer.root(
            "migration",
            sim_s=now,
            kind="scale_in",
            retiring=plan.retiring,
            retained=retained,
        )
        plan_span = span.child("plan", sim_s=now)
        scoring_span = plan_span.child("scoring") if include_scoring else None
        if scoring_span is not None:
            scoring_span.end()

        # Phase 1: retiring agents dump, hash, and ship metadata.
        # incoming[dst][class_id] = [(src, [(key, ts), ...]), ...]
        dump_span = plan_span.child("dump")
        incoming: dict[str, dict[int, list[tuple[str, list[tuple[str, float]]]]]]
        incoming = {name: {} for name in retained}
        metadata_flows: list[Flow] = []
        max_dump_s = 0.0
        for src in plan.retiring:
            agent = self.agent(src)
            grouped = agent.dump_and_hash(target_ring)
            max_dump_s = max(
                max_dump_s, len(agent.node) / self.dump_rate_items_s
            )
            for dst, per_class in grouped.items():
                size = Agent.metadata_bytes(per_class)
                plan.metadata_bytes += size
                if size > 0:
                    metadata_flows.append(Flow(src, dst, size))
                for class_id, entries in per_class.items():
                    incoming[dst].setdefault(class_id, []).append(
                        (src, entries)
                    )
        timings.dump_s = max_dump_s
        timings.metadata_transfer_s = self.network.phase_time(metadata_flows)
        dump_span.end()

        # Phase 2: each retained agent runs FuseCache per slab class.
        fusecache_span = plan_span.child("fusecache")
        import_load: dict[str, int] = {name: 0 for name in retained}
        for dst in retained:
            dst_agent = self.agent(dst)
            for class_id, sources in incoming[dst].items():
                lists = [
                    [ts for _, ts in entries] for _, entries in sources
                ]
                lists.append(dst_agent.sorted_timestamps(class_id))
                capacity = dst_agent.slab_capacity_items(class_id)
                if capacity == 0:
                    capacity = sum(len(lst) for lst in lists)
                result = fuse_cache_detailed(lists, capacity)
                plan.fusecache_rounds += result.rounds
                plan.fusecache_comparisons += result.comparisons
                for index, (src, entries) in enumerate(sources):
                    take = result.topick[index]
                    if take == 0:
                        continue
                    keys = [key for key, _ in entries[:take]]
                    plan.transfers.setdefault((src, dst), []).extend(keys)
                    import_load[dst] += take
        timings.fusecache_s = (
            plan.fusecache_comparisons * self.comparison_time_s
        )
        fusecache_span.end()

        self._price_data_phase(plan, import_load)
        self._finish_plan_trace(
            plan, now, span, plan_span, scoring_span, dump_span, fusecache_span
        )
        self._strict_plan_check(plan, target_ring)
        return plan

    # ------------------------------------------------------------------
    # Scale-out planning
    # ------------------------------------------------------------------

    def plan_scale_out(
        self, new_names: list[str], now: float = 0.0
    ) -> MigrationPlan:
        """Compute the migration that warms ``new_names`` before activation.

        New nodes are provisioned (cold, off-ring) here.  Existing nodes
        hash their keys against the scaled-out membership; under
        consistent hashing only ~1/(k+1) of keys move, so normally *all*
        hashed pairs migrate (Section III-D4).  FuseCache trims the set
        only in the rare case it exceeds the new node's capacity.
        """
        if not new_names:
            raise MigrationError("no new nodes given")
        existing = sorted(self.cluster.active_members)
        for name in new_names:
            if name in self.cluster.nodes:
                raise MigrationError(f"node {name!r} already exists")
        for name in new_names:
            self.cluster.provision(name)

        members_after = existing + sorted(new_names)
        target_ring = self.cluster.ring_for(members_after)
        plan = MigrationPlan(
            kind="scale_out",
            retiring=[],
            retained=existing,
            new_nodes=sorted(new_names),
            transfers={},
            timings=PhaseTimings(),
        )
        span = self.telemetry.tracer.root(
            "migration",
            sim_s=now,
            kind="scale_out",
            new_nodes=plan.new_nodes,
            retained=existing,
        )
        plan_span = span.child("plan", sim_s=now)
        dump_span = plan_span.child("dump")

        new_set = set(new_names)
        incoming: dict[str, dict[int, list[tuple[str, list[tuple[str, float]]]]]]
        incoming = {name: {} for name in new_names}
        max_dump_s = 0.0
        for src in existing:
            agent = self.agent(src)
            grouped = agent.dump_and_hash(target_ring)
            max_dump_s = max(
                max_dump_s, len(agent.node) / self.dump_rate_items_s
            )
            for dst, per_class in grouped.items():
                if dst not in new_set:
                    # Ketama can slightly reshuffle among existing nodes;
                    # those keys are left in place (they re-warm on miss).
                    continue
                for class_id, entries in per_class.items():
                    incoming[dst].setdefault(class_id, []).append(
                        (src, entries)
                    )
        plan.timings.dump_s = max_dump_s
        dump_span.end()

        fusecache_span = plan_span.child("fusecache")
        import_load: dict[str, int] = {name: 0 for name in new_names}
        for dst in new_names:
            dst_agent = self.agent(dst)
            for class_id, sources in incoming[dst].items():
                total_incoming = sum(len(entries) for _, entries in sources)
                capacity = dst_agent.slab_capacity_items(class_id)
                if capacity and total_incoming > capacity:
                    lists = [
                        [ts for _, ts in entries] for _, entries in sources
                    ]
                    result = fuse_cache_detailed(lists, capacity)
                    plan.fusecache_rounds += result.rounds
                    plan.fusecache_comparisons += result.comparisons
                    picks = result.topick
                else:
                    picks = [len(entries) for _, entries in sources]
                for index, (src, entries) in enumerate(sources):
                    take = picks[index]
                    if take == 0:
                        continue
                    keys = [key for key, _ in entries[:take]]
                    plan.transfers.setdefault((src, dst), []).extend(keys)
                    import_load[dst] += take
        plan.timings.fusecache_s = (
            plan.fusecache_comparisons * self.comparison_time_s
        )
        fusecache_span.end()

        self._price_data_phase(plan, import_load)
        self._finish_plan_trace(
            plan, now, span, plan_span, None, dump_span, fusecache_span
        )
        self._strict_plan_check(plan, target_ring)
        return plan

    # ------------------------------------------------------------------
    # Naive fraction-based planning (Section V-B4 comparison)
    # ------------------------------------------------------------------

    def plan_fraction_scale_in(
        self, retiring: list[str], keep_fraction: float, now: float = 0.0
    ) -> MigrationPlan:
        """Plan the *Naive* migration: hottest ``keep_fraction`` of each
        retiring node's items, regardless of the targets' contents.

        No metadata exchange and no FuseCache -- Naive assumes the hotness
        distribution is identical across every node, so "the coldest
        ``1 - keep_fraction`` fraction of items of all nodes can be
        discarded" (Section V-B4): victims ship their hottest
        ``keep_fraction``, and every *retained* node pre-deletes its own
        coldest ``1 - keep_fraction`` to make room.  When node
        temperatures actually differ, a hot retained node throws away
        items that are hotter than the junk it receives -- the failure
        mode Fig. 8 demonstrates.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise MigrationError(
                f"keep_fraction must be in [0, 1], got {keep_fraction}"
            )
        active = set(self.cluster.active_members)
        unknown = [name for name in retiring if name not in active]
        if unknown:
            raise MigrationError(f"cannot retire inactive nodes: {unknown}")
        retained = sorted(active - set(retiring))
        if not retained:
            raise MigrationError("cannot retire every node")

        target_ring = self.cluster.ring_for(retained)
        plan = MigrationPlan(
            kind="scale_in",
            retiring=sorted(retiring),
            retained=retained,
            new_nodes=[],
            transfers={},
            timings=PhaseTimings(),
        )
        span = self.telemetry.tracer.root(
            "migration",
            sim_s=now,
            kind="scale_in",
            strategy="fraction",
            retiring=plan.retiring,
            keep_fraction=keep_fraction,
        )
        plan_span = span.child("plan", sim_s=now)
        dump_span = plan_span.child("dump")
        import_load: dict[str, int] = {name: 0 for name in retained}
        max_dump_s = 0.0
        for src in plan.retiring:
            node = self.cluster.nodes[src]
            max_dump_s = max(
                max_dump_s, len(node) / self.dump_rate_items_s
            )
            for class_id in node.active_class_ids():
                items = node.items_in_mru_order(class_id)
                take = int(len(items) * keep_fraction)
                for item in items[:take]:
                    dst = target_ring.node_for_key(item.key)
                    plan.transfers.setdefault((src, dst), []).append(
                        item.key
                    )
                    import_load[dst] += 1
        # Room-making under the uniform-hotness assumption: every
        # retained node drops its own coldest (1 - keep_fraction).
        for name in retained:
            node = self.cluster.nodes[name]
            doomed: list[str] = []
            for class_id in node.active_class_ids():
                items = node.items_in_mru_order(class_id)
                keep = int(len(items) * keep_fraction)
                doomed.extend(item.key for item in items[keep:])
            if doomed:
                plan.pre_deletes[name] = doomed
        plan.timings.dump_s = max_dump_s
        dump_span.end()
        self._price_data_phase(plan, import_load)
        self._finish_plan_trace(plan, now, span, plan_span, None, dump_span, None)
        self._strict_plan_check(plan, target_ring)
        return plan

    def _strict_plan_check(
        self, plan: MigrationPlan, target_ring: "ConsistentHashRing"
    ) -> None:
        """Strict mode: validate planning left every structure intact."""
        checker = self.strict_checker
        if checker is None:
            return
        names = plan.retiring + plan.retained + plan.new_nodes
        checker.check_nodes(
            "plan", names, require_sorted=self._mru_sorted
        )
        checker.check_target_ring("plan", target_ring)

    def _finish_plan_trace(
        self,
        plan: MigrationPlan,
        now: float,
        span: Any,
        plan_span: Any,
        scoring_span: Any,
        dump_span: Any,
        fusecache_span: Any,
    ) -> None:
        """Pin the plan-phase spans to the modeled sim timeline.

        Wall clocks were measured live while planning ran; the sim
        windows come from the calibrated :class:`PhaseTimings`, laid out
        sequentially from the decision time ``now`` (the paper's
        scoring -> dump -> fusecache pipeline).
        """
        timings = plan.timings
        cursor = now
        if scoring_span is not None:
            scoring_span.sim_window(cursor, cursor + timings.scoring_s)
        cursor += timings.scoring_s
        dump_phase_s = timings.dump_s + timings.metadata_transfer_s
        dump_span.sim_window(cursor, cursor + dump_phase_s)
        dump_span.set(
            dump_s=timings.dump_s,
            metadata_transfer_s=timings.metadata_transfer_s,
            metadata_bytes=plan.metadata_bytes,
        )
        cursor += dump_phase_s
        if fusecache_span is not None:
            fusecache_span.sim_window(cursor, cursor + timings.fusecache_s)
            fusecache_span.set(
                rounds=plan.fusecache_rounds,
                comparisons=plan.fusecache_comparisons,
            )
        cursor += timings.fusecache_s
        plan_span.end(sim_s=cursor)
        span.set(
            items_to_migrate=plan.items_to_migrate,
            bytes_to_migrate=plan.bytes_to_migrate,
            pairs=len(plan.transfers),
        )
        plan.span = span
        metrics = self.telemetry.metrics
        metrics.counter(
            "migrations_planned_total",
            "Migration plans computed",
            kind=plan.kind,
        ).inc()
        metrics.counter(
            "fusecache_comparisons_total",
            "Timestamp comparisons spent in FuseCache",
        ).inc(plan.fusecache_comparisons)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, plan: MigrationPlan, now: float = 0.0) -> MigrationReport:
        """Run phase 3 resiliently and switch membership.

        Keys evicted since planning are skipped (the protocol tolerates
        drift between the metadata snapshot and the data move).  Each
        (src, dst) pair's data flow runs under the fault model: failed
        flows are retried per :attr:`retry_policy` with modeled backoff,
        node stalls stretch dump/import time, and everything is charged
        against :attr:`deadline_s`.  When the deadline fires, remaining
        pairs are abandoned and the scaling action completes cold --
        membership still switches, because a late warm-up must never
        block the resize itself.  For scale-in, retiring nodes are
        destroyed after the switch; for scale-out, the new nodes are
        activated after their import.
        """
        mode = plan.import_mode or self.import_mode
        report = MigrationReport(plan=plan, executed_at=now)
        injector = self.fault_injector
        span = plan.span
        clock = now
        deadline = None if self.deadline_s is None else now + self.deadline_s
        import_span = span.child("import", sim_s=clock, mode=mode)
        if injector is not None:
            self._trace_faults(import_span, injector.advance(clock), clock)
        for node_name, keys in plan.pre_deletes.items():
            node = self.cluster.nodes.get(node_name)
            if node is None:
                continue
            try:
                for key in keys:
                    node.delete(key)
            except TransportError as exc:
                # Room-making is an optimisation; an unreachable node
                # keeps its cold items and the migration proceeds.
                import_span.event(
                    "pre_delete_failed",
                    sim_s=clock,
                    node=node_name,
                    error=str(exc),
                )
        aborted = False
        for (src, dst), keys in plan.transfers.items():
            if aborted:
                report.unattempted_pairs.append((src, dst))
                continue
            if injector is not None:
                self._trace_faults(
                    import_span, injector.advance(clock), clock
                )
            # A node lost between planning and execution degrades the
            # migration to a partial warm-up rather than failing it: the
            # scaling action must still complete (Section III-D's
            # protocol tolerates snapshot drift).
            if src not in self.cluster.nodes or dst not in self.cluster.nodes:
                report.skipped_pairs.append((src, dst))
                import_span.event(
                    "pair_skipped", sim_s=clock, src=src, dst=dst,
                    reason="node lost before execution",
                )
                continue
            clock = self._migrate_pair(
                plan, report, src, dst, keys, mode, clock, import_span
            )
            if deadline is not None and clock >= deadline:
                aborted = True
                report.abort_reason = (
                    f"deadline of {self.deadline_s:.1f}s exceeded "
                    f"{clock - now:.1f}s into phase 3 (pair {src} -> {dst})"
                )
                import_span.event(
                    "deadline_exceeded", sim_s=clock,
                    deadline_s=self.deadline_s,
                )
        import_span.end(sim_s=clock)
        report.actual_duration_s = clock - now
        plan.timings.retry_s += report.retry_time_s
        report.outcome = report.classify()
        if mode != "merge" and report.items_imported > 0:
            self._mru_sorted = False
        if self.strict_checker is not None:
            targets = {dst for (_, dst) in plan.transfers}
            targets.update(plan.pre_deletes)
            self.strict_checker.check_nodes(
                "import", sorted(targets), require_sorted=self._mru_sorted
            )
        if aborted and self.on_deadline == "raise":
            self._finish_migration_trace(span, report, clock)
            raise MigrationAbortedError(report.abort_reason or "aborted")
        switch_span = span.child("switch", sim_s=clock)
        if plan.kind == "scale_in":
            retained = [
                name
                for name in plan.retained
                if name in self.cluster.nodes
            ]
            if not retained:
                switch_span.end(sim_s=clock)
                self._finish_migration_trace(span, report, clock)
                raise MigrationError(
                    "no retained node survived until execution"
                )
            self.cluster.set_membership(retained)
            for name in plan.retiring:
                if name in self.cluster.nodes:
                    self.cluster.destroy(name)
        else:
            for name in plan.new_nodes:
                if name in self.cluster.nodes:
                    self.cluster.activate(name)
        report.membership_after = sorted(self.cluster.active_members)
        self._notify_membership(report.membership_after)
        switch_span.set(membership=report.membership_after)
        switch_span.end(sim_s=clock)
        self._finish_migration_trace(span, report, clock)
        if self.strict_checker is not None:
            self.strict_checker.check_cluster_ring("switch")
        return report

    def _trace_faults(
        self, span: Any, fired: Any, clock: float
    ) -> None:
        """Record injector faults that landed mid-migration as span events."""
        for applied in fired:
            span.event(
                "fault",
                sim_s=clock,
                kind=applied.spec.kind,
                detail=applied.detail,
            )

    def _finish_migration_trace(
        self, span: Any, report: MigrationReport, clock: float
    ) -> None:
        """Close the migration's root span and flush its metrics."""
        span.set(
            outcome=report.outcome,
            items_exported=report.items_exported,
            items_imported=report.items_imported,
            completed_pairs=report.completed_pairs,
            retries=report.retries,
            failed_flows=len(report.failed_flows),
            skipped_pairs=len(report.skipped_pairs),
            unattempted_pairs=len(report.unattempted_pairs),
        )
        if report.abort_reason:
            span.set(abort_reason=report.abort_reason)
        span.end(sim_s=clock)
        metrics = self.telemetry.metrics
        metrics.counter(
            "migrations_executed_total",
            "Executed migrations by final outcome",
            kind=report.plan.kind,
            outcome=report.outcome,
        ).inc()
        metrics.counter(
            "migration_items_imported_total",
            "Items installed by batch imports during migrations",
        ).inc(report.items_imported)
        for phase, seconds in report.plan.timings.breakdown().items():
            metrics.histogram(
                "migration_phase_seconds",
                "Modeled seconds per migration phase",
                phase=phase,
            ).observe(seconds)

    def abort_scale_out(self, plan: MigrationPlan) -> None:
        """Tear down nodes provisioned by an unexecuted scale-out plan."""
        for name in plan.new_nodes:
            if name in self.cluster.nodes and name not in self.cluster.ring:
                self.cluster.destroy(name)
        plan.span.set(outcome="aborted")
        plan.span.end()

    # ------------------------------------------------------------------
    # Re-planning around dead nodes
    # ------------------------------------------------------------------

    def replan(self, plan: MigrationPlan) -> MigrationPlan | None:
        """Adapt ``plan`` to nodes that died since it was computed.

        Returns the plan unchanged when every referenced node is still
        alive.  When a *retained* (or, for scale-out, existing) node died,
        the migration is re-planned from scratch against the surviving
        membership so its data flows target live nodes; dead *retiring*
        nodes are simply dropped (their data is gone either way).
        Returns ``None`` when nothing is left to do -- e.g. every node
        being added by a scale-out died before activation.
        """
        live = set(self.cluster.nodes)
        if plan.kind == "scale_in":
            referenced = set(plan.retained) | set(plan.retiring)
            if referenced <= live:
                return plan
            retiring = [
                name
                for name in plan.retiring
                if name in self.cluster.active_members
            ]
            retained = set(self.cluster.active_members) - set(retiring)
            if not retained:
                return None
            if not retiring:
                return None
            fresh = self.plan_scale_in(retiring, include_scoring=False)
            fresh.import_mode = plan.import_mode
            plan.span.set(outcome="replanned")
            plan.span.end()
            return fresh
        surviving_new = [
            name for name in plan.new_nodes if name in live
        ]
        if set(plan.retained) | set(plan.new_nodes) <= live:
            return plan
        if not surviving_new:
            return None
        # Re-plan the metadata/fusecache phases against the survivors:
        # tear down nothing (surviving new nodes stay provisioned) and
        # rebuild the transfer map from live existing nodes.
        replanned = self._replan_scale_out(surviving_new)
        replanned.import_mode = plan.import_mode
        replanned.span = plan.span  # keep the original decision's trace
        return replanned

    def _replan_scale_out(self, new_names: list[str]) -> MigrationPlan:
        """Re-run scale-out planning for already-provisioned new nodes."""
        existing = sorted(self.cluster.active_members)
        members_after = existing + sorted(new_names)
        target_ring = self.cluster.ring_for(members_after)
        plan = MigrationPlan(
            kind="scale_out",
            retiring=[],
            retained=existing,
            new_nodes=sorted(new_names),
            transfers={},
            timings=PhaseTimings(),
        )
        new_set = set(new_names)
        import_load: dict[str, int] = {name: 0 for name in new_names}
        for src in existing:
            agent = self.agent(src)
            grouped = agent.dump_and_hash(target_ring)
            for dst, per_class in grouped.items():
                if dst not in new_set:
                    continue
                for class_id, entries in per_class.items():
                    keys = [key for key, _ in entries]
                    if keys:
                        plan.transfers.setdefault((src, dst), []).extend(
                            keys
                        )
                        import_load[dst] += len(keys)
        self._price_data_phase(plan, import_load)
        return plan

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _migrate_pair(
        self,
        plan: MigrationPlan,
        report: MigrationReport,
        src: str,
        dst: str,
        keys: list[str],
        mode: str,
        clock: float,
        parent_span: Any = NULL_SPAN,
    ) -> float:
        """Move one (src, dst) pair under the fault model; returns the
        modeled clock after the attempt(s)."""
        injector = self.fault_injector
        metrics = self.telemetry.metrics
        pair_span = parent_span.child(
            "pair", sim_s=clock, src=src, dst=dst, keys=len(keys)
        )
        size = self._pair_bytes(src, keys)
        flow = Flow(src, dst, size) if size > 0 else None
        failures = 0
        while True:
            if flow is not None:
                result = self.network.attempt_flow(flow, now=clock)
            else:
                result = None
            if result is None or result.ok:
                break
            failures += 1
            clock += result.duration_s
            report.retry_time_s += result.duration_s
            pair_span.event(
                "flow_failed",
                sim_s=clock,
                error=result.error,
                attempt=failures,
            )
            if failures >= self.retry_policy.max_attempts:
                report.failed_flows.append((src, dst))
                pair_span.set(outcome="failed", attempts=failures)
                pair_span.end(sim_s=clock)
                return clock
            backoff = self.retry_policy.backoff_s(failures)
            report.retries += 1
            report.retry_time_s += backoff
            clock += backoff
            pair_span.event("retry", sim_s=clock, backoff_s=backoff)
            metrics.counter(
                "migration_retries_total",
                "Data-flow retries during migrations",
            ).inc()
            if injector is not None:
                # Let faults scheduled during the backoff window land
                # before the retry (a crashed endpoint fails the pair).
                self._trace_faults(
                    pair_span, injector.advance(clock), clock
                )
                if (
                    src not in self.cluster.nodes
                    or dst not in self.cluster.nodes
                ):
                    report.skipped_pairs.append((src, dst))
                    pair_span.set(outcome="skipped", attempts=failures)
                    pair_span.end(sim_s=clock)
                    return clock
        # Dump, transfer, and import succeed; node stalls stretch the
        # modeled durations.
        dump_factor = import_factor = 1.0
        if injector is not None:
            dump_factor = injector.rate_factor(src, clock)
            import_factor = injector.rate_factor(dst, clock)
        src_agent = self.agent(src)
        dst_agent = self.agent(dst)
        clock += src_agent.dump_seconds(
            len(keys), self.dump_rate_items_s, dump_factor
        )
        if result is not None:
            clock += result.duration_s
        try:
            migrated = src_agent.export_items(keys)
            report.items_exported += len(migrated)
            imported = dst_agent.import_items(migrated, mode=mode, now=clock)
        except TransportError as exc:
            # A live (socket-backed) pair whose transport retries ran out
            # degrades exactly like an exhausted simulated flow: record
            # the failure and move on, because the scaling action itself
            # must still complete.
            report.failed_flows.append((src, dst))
            pair_span.event("transport_failed", sim_s=clock, error=str(exc))
            pair_span.set(outcome="failed", attempts=failures + 1)
            pair_span.end(sim_s=clock)
            metrics.counter(
                "migration_transport_failures_total",
                "Live data flows lost to exhausted transport retries",
            ).inc()
            return clock
        report.items_imported += imported
        clock += dst_agent.import_seconds(
            imported, self.import_rate_items_s, import_factor
        )
        report.completed_pairs += 1
        pair_span.set(outcome="completed", items=imported, bytes=size)
        pair_span.end(sim_s=clock)
        return clock

    def _pair_bytes(self, src: str, keys: list[str]) -> int:
        """Current wire size of one pair's keys (evicted keys excluded)."""
        node = self.cluster.nodes[src]
        size = 0
        for key in keys:
            item = node.peek(key)
            if item is not None:
                size += len(key) + item.value_size
        return size

    def _price_data_phase(
        self, plan: MigrationPlan, import_load: dict[str, int]
    ) -> None:
        """Fill in phase-3 byte counts and modeled durations."""
        data_flows: list[Flow] = []
        for (src, dst), keys in plan.transfers.items():
            node = self.cluster.nodes[src]
            size = 0
            for key in keys:
                item = node.peek(key)
                if item is not None:
                    size += len(key) + item.value_size
            plan.items_to_migrate += len(keys)
            plan.bytes_to_migrate += size
            if size > 0:
                data_flows.append(Flow(src, dst, size))
        plan.timings.data_transfer_s = self.network.phase_time(data_flows)
        busiest_import = max(import_load.values(), default=0)
        plan.timings.import_s = busiest_import / self.import_rate_items_s
