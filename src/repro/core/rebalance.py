"""Hot-spot load rebalancing -- the paper's stated future work.

Section VII (and the related-work discussion of MBal/SPORE) points at
integrating ElMem's dynamic scaling with *load balancing*: skewed key
popularity leaves some Memcached nodes much hotter than others, which
both degrades tail latency and -- as the Fig. 7 analysis shows -- makes
node choice matter during scaling.  This module implements that
extension: it watches per-node request load and, when the imbalance
crosses a threshold, migrates a batch of the hottest items off the most
loaded node to the least loaded one, installing client-side routing
overrides (:meth:`~repro.memcached.cluster.MemcachedCluster.set_remap`)
so subsequent requests follow the data.

The data movement reuses ElMem's machinery: items are exported with
their MRU timestamps and imported timestamp-preserving, so FuseCache
keeps seeing honest hotness on every node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError
from repro.memcached.cluster import MemcachedCluster
from repro.netsim.transfer import Flow, NetworkModel


@dataclass
class RebalanceAction:
    """One executed rebalancing step."""

    time: float
    source: str
    target: str
    items_moved: int
    bytes_moved: int
    duration_s: float
    imbalance_before: float


@dataclass
class _LoadWindow:
    """Sliding per-node request counters."""

    counts: dict[str, int] = field(default_factory=dict)
    total: int = 0

    def bump(self, node: str) -> None:
        self.counts[node] = self.counts.get(node, 0) + 1
        self.total += 1

    def reset(self) -> None:
        self.counts.clear()
        self.total = 0


class LoadRebalancer:
    """Request-driven hot-spot mitigation for a Memcached tier.

    Parameters
    ----------
    cluster:
        The tier to watch and rebalance.
    network:
        Transfer-time model for pricing the data moves.
    imbalance_threshold:
        Trigger when (hottest node load) / (mean load) exceeds this.
    batch_items:
        Items to move per rebalancing step.
    min_window_requests:
        Observations required before the imbalance signal is trusted.
    """

    def __init__(
        self,
        cluster: MemcachedCluster,
        network: NetworkModel | None = None,
        imbalance_threshold: float = 1.5,
        batch_items: int = 500,
        min_window_requests: int = 2_000,
    ) -> None:
        if imbalance_threshold <= 1.0:
            raise ConfigurationError(
                "imbalance_threshold must exceed 1.0"
            )
        if batch_items < 1:
            raise ConfigurationError("batch_items must be positive")
        self.cluster = cluster
        self.network = network or NetworkModel()
        self.imbalance_threshold = imbalance_threshold
        self.batch_items = batch_items
        self.min_window_requests = min_window_requests
        self.window = _LoadWindow()
        self.actions: list[RebalanceAction] = []

    # ------------------------------------------------------------------
    # Signal collection
    # ------------------------------------------------------------------

    def observe(self, key: str) -> None:
        """Attribute one request to the node currently serving ``key``."""
        self.window.bump(self.cluster.route(key))

    def observe_many(self, keys: Iterable[str]) -> None:
        """Attribute a batch of requests."""
        for key in keys:
            self.observe(key)

    def imbalance(self) -> float:
        """Hottest node's load relative to the mean (1.0 = balanced)."""
        members = self.cluster.active_members
        if not members or self.window.total == 0:
            return 1.0
        mean = self.window.total / len(members)
        hottest = max(
            self.window.counts.get(name, 0) for name in members
        )
        return hottest / mean if mean > 0 else 1.0

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def maybe_rebalance(self, now: float) -> RebalanceAction | None:
        """Move one hot batch if the tier is imbalanced enough.

        Returns the action taken, or ``None`` when the window is too
        small, the tier is balanced, or there is nothing to move.
        """
        if self.window.total < self.min_window_requests:
            return None
        current = self.imbalance()
        if current < self.imbalance_threshold:
            return None
        members = sorted(self.cluster.active_members)
        if len(members) < 2:
            return None
        source = max(
            members, key=lambda name: self.window.counts.get(name, 0)
        )
        target = min(
            members, key=lambda name: self.window.counts.get(name, 0)
        )
        if source == target:
            return None
        action = self._move_batch(source, target, now, current)
        self.window.reset()
        if action is not None:
            self.actions.append(action)
        return action

    def _move_batch(
        self, source: str, target: str, now: float, imbalance: float
    ) -> RebalanceAction | None:
        source_node = self.cluster.nodes[source]
        target_node = self.cluster.nodes[target]
        hottest = sorted(
            (
                item
                for class_id in source_node.active_class_ids()
                for item in source_node.items_in_mru_order(class_id)[
                    : self.batch_items
                ]
            ),
            key=lambda item: item.last_access,
            reverse=True,
        )[: self.batch_items]
        if not hottest:
            return None
        keys = [item.key for item in hottest]
        migrated = source_node.export_items(keys)
        imported = target_node.batch_import(migrated, mode="merge")
        moved_bytes = sum(record.transfer_bytes for record in migrated)
        for key in keys:
            source_node.delete(key)
            self.cluster.set_remap(key, target)
        duration = self.network.phase_time(
            [Flow(source, target, max(moved_bytes, 1))]
        )
        return RebalanceAction(
            time=now,
            source=source,
            target=target,
            items_moved=imported,
            bytes_moved=moved_bytes,
            duration_s=duration,
            imbalance_before=imbalance,
        )
