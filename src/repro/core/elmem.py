"""The ElMem facade: AutoScaler + Master + migration policy in one object.

:class:`ElMemController` is the public entry point a deployment would use:
feed it the request stream (the AutoScaler's sample), call
:meth:`ElMemController.evaluate` periodically (the paper does so every
minute), and it plans and executes FuseCache migrations around every
scaling action.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.autoscaler import AutoScaler, AutoScalerConfig, ScalingDecision
from repro.core.master import Master, MigrationReport
from repro.core.policies import ElMemPolicy, MigrationPolicy, MultigetResult
from repro.core.retry import RetryPolicy
from repro.faults.injector import FaultInjector
from repro.memcached.cluster import MemcachedCluster
from repro.netsim.transfer import NetworkModel


class ElMemController:
    """Orchestrates an elastic Memcached tier.

    Parameters
    ----------
    cluster:
        The Memcached tier under management.
    autoscaler_config:
        Tuning for Q1 (when/how much to scale); see
        :class:`~repro.core.autoscaler.AutoScalerConfig`.
    network:
        Transfer-time model for migration phases.
    policy:
        Migration policy; defaults to :class:`ElMemPolicy` (the paper's
        system).  Swapping in another policy turns the controller into
        one of the evaluation baselines.
    evaluation_interval_s:
        Minimum seconds between autoscaling evaluations (paper: 60 s).
    fault_injector:
        Optional seeded fault campaign; the controller advances it on
        every :meth:`tick`/:meth:`evaluate` and plans scaling actions
        against whatever membership survived.
    retry_policy / migration_deadline_s:
        Resilience knobs forwarded to the :class:`Master` (bounded
        retries with backoff; warm-up budget before degrading to cold
        scaling).
    """

    def __init__(
        self,
        cluster: MemcachedCluster,
        autoscaler_config: AutoScalerConfig,
        network: NetworkModel | None = None,
        policy: MigrationPolicy | None = None,
        evaluation_interval_s: float = 60.0,
        seed: int = 0,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        migration_deadline_s: float | None = None,
    ) -> None:
        self.cluster = cluster
        self.autoscaler = AutoScaler(autoscaler_config)
        self.master = Master(
            cluster,
            network=network,
            retry_policy=retry_policy,
            deadline_s=migration_deadline_s,
        )
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach(self.master)
        self.policy = policy or ElMemPolicy()
        self.policy.bind(cluster, self.master, random.Random(seed))
        self.evaluation_interval_s = evaluation_interval_s
        self._last_evaluation: float | None = None
        self.decisions: list[ScalingDecision] = []
        self._window_requests = 0

    @property
    def reports(self) -> list[MigrationReport]:
        """Migration reports produced by the active policy."""
        return self.policy.reports

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def observe_keys(self, keys: Iterable[str], now: float) -> None:
        """Feed requested keys to the AutoScaler's profiling window."""
        for key in keys:
            self.autoscaler.observe(key)
            self._window_requests += 1

    def multiget(self, keys: list[str], now: float) -> MultigetResult:
        """Cache-tier lookup through the active policy."""
        return self.policy.multiget(keys, now)

    def fill(self, key: str, value: object, value_size: int, now: float) -> None:
        """Read-through fill after a database fetch."""
        self.policy.fill(key, value, value_size, now)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance faults and in-flight migrations; call once per second."""
        if self.fault_injector is not None:
            self.fault_injector.advance(now)
        self.policy.tick(now)

    def evaluate(self, request_rate: float, now: float) -> ScalingDecision | None:
        """Run one autoscaling evaluation if the interval has elapsed.

        Faults due by ``now`` are applied first, so the decision -- and
        any migration planned from it -- sees the post-crash membership
        rather than planning transfers to nodes that no longer exist
        (re-planning around later deaths happens in the policy's tick).

        Returns the decision when one was made (even if it required no
        resize), or ``None`` when throttled by the evaluation interval or
        an in-flight migration.
        """
        if self.fault_injector is not None:
            self.fault_injector.advance(now)
        if (
            self._last_evaluation is not None
            and now - self._last_evaluation < self.evaluation_interval_s
        ):
            return None
        if self.policy.pending:
            return None
        self._last_evaluation = now
        decision = self.autoscaler.decide(
            request_rate, len(self.cluster.active_members)
        )
        self.decisions.append(decision)
        if decision.delta != 0:
            self.policy.on_scale_decision(decision.target_nodes, now)
        self.autoscaler.reset_window()
        self._window_requests = 0
        return decision
