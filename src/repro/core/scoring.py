"""Which node(s) to retire (Q2, Section III-C).

Retiring the node whose *hot* data is smallest minimises the bytes moved
before scale-in.  Finding that node exactly would require comparing every
item across nodes, so ElMem compares only each slab's **median** MRU
timestamp: picking the node with the coldest median guarantees at most
half its items are hotter than the other node's median (the
median-of-medians bound), versus a worst case of *all* items for a random
pick.  Per-slab scores are combined as a weighted sum, weighting slab
``b`` by the fraction of the node's memory pages assigned to it
(``w_b``), and the Master retires the ``x`` nodes with the smallest
weighted sums.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.interfaces import CacheNode
from repro.errors import ConfigurationError

COLD_TIMESTAMP = float("-inf")
"""Score used for a slab class that holds no items on a node."""


def node_score(node: CacheNode, method: str = "timestamp") -> float:
    """Weighted median-hotness score of one node.

    ``method="timestamp"`` uses the raw median MRU timestamp per slab
    class (the paper's ``s_{b,i}``); empty classes contribute nothing.
    Lower scores mean colder data -- cheaper to retire.
    """
    if method != "timestamp":
        raise ConfigurationError(f"unknown scoring method {method!r}")
    fractions = node.page_fractions()
    if not fractions:
        return COLD_TIMESTAMP
    score = 0.0
    weight_seen = 0.0
    for class_id, weight in fractions.items():
        median = node.median_timestamp(class_id)
        if median is None:
            continue
        score += weight * median
        weight_seen += weight
    if weight_seen == 0.0:
        return COLD_TIMESTAMP
    return score


def score_nodes(
    nodes: Sequence[CacheNode], method: str = "timestamp"
) -> dict[str, float]:
    """Score every node; lower = colder = better to retire."""
    return {node.name: node_score(node, method) for node in nodes}


def choose_nodes_to_retire(
    nodes: Sequence[CacheNode],
    count: int,
    method: str = "timestamp",
) -> list[str]:
    """The ``count`` distinct nodes with the smallest weighted sums.

    Ties break on node name for determinism.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if count > len(nodes):
        raise ConfigurationError(
            f"cannot retire {count} of {len(nodes)} nodes"
        )
    scores = score_nodes(nodes, method)
    ranked = sorted(scores.items(), key=lambda pair: (pair[1], pair[0]))
    return [name for name, _ in ranked[:count]]


def rank_nodes_by_score(
    nodes: Sequence[CacheNode], method: str = "timestamp"
) -> list[tuple[str, float]]:
    """All nodes sorted coldest-first -- the x-axis of the paper's Fig. 7."""
    scores = score_nodes(nodes, method)
    return sorted(scores.items(), key=lambda pair: (pair[1], pair[0]))
