"""Migration policies compared in the paper's evaluation (Section V).

A policy is *how the tier reacts to a scaling decision*:

- :class:`BaselinePolicy` -- scale immediately, migrate nothing (the red
  line of Fig. 2; also how Amazon ElastiCache behaves).
- :class:`ElMemPolicy` -- plan the FuseCache migration at decision time,
  keep serving on the old membership while data moves, and switch
  membership once migration completes (~2 min later).
- :class:`NaivePolicy` -- migrate the hottest ``(n-x)/n`` fraction off
  ``x`` *randomly chosen* nodes, assuming hotness is identically
  distributed across nodes (Section V-B4).
- :class:`CacheScalePolicy` -- switch membership immediately but keep the
  old owners as a *secondary cache*: primary misses retry there and hits
  are migrated on access; secondaries are discarded after a deadline
  (Hwang & Wood, CacheScale).

All policies share ElMem's answers to Q1/Q2 (when/which) except Naive,
which picks nodes at random -- exactly the comparison the paper makes.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.interfaces import CacheCluster
from repro.core.master import Master, MigrationPlan, MigrationReport
from repro.errors import MigrationError
from repro.hashing.ketama import ConsistentHashRing


@dataclass
class MultigetResult:
    """Cache-tier answer for one web request's key batch.

    ``hit_count`` counts *lookups* that hit, so a key requested twice in
    one batch contributes two hits; the ``hits`` dict keeps one value per
    distinct key.
    """

    hits: dict[str, Any] = field(default_factory=dict)
    misses: list[str] = field(default_factory=list)
    secondary_hits: int = 0
    hit_count: int = 0


@dataclass
class ScalingEvent:
    """Audit-trail entry recorded by a policy."""

    time: float
    kind: str
    detail: str


class MigrationPolicy(ABC):
    """Strategy invoked by the simulator around scaling actions."""

    name = "abstract"

    def __init__(self) -> None:
        self.cluster: CacheCluster | None = None
        self.master: Master | None = None
        self.rng = random.Random(0)
        self.events: list[ScalingEvent] = []
        self.reports: list[MigrationReport] = []
        self._node_counter = 0

    def bind(
        self,
        cluster: CacheCluster,
        master: Master,
        rng: random.Random | None = None,
    ) -> None:
        """Attach the policy to a cluster/master pair before simulation."""
        self.cluster = cluster
        self.master = master
        if rng is not None:
            self.rng = rng
        self._node_counter = len(cluster.nodes)

    # -- hooks ----------------------------------------------------------

    @abstractmethod
    def on_scale_decision(self, target_nodes: int, now: float) -> None:
        """React to a decision to resize the tier to ``target_nodes``."""

    def tick(self, now: float) -> None:
        """Advance background work (pending switches, secondary expiry)."""

    @property
    def pending(self) -> bool:
        """True while a scaling action is still in flight."""
        return False

    def multiget(self, keys: Iterable[str], now: float) -> MultigetResult:
        """Look up a key batch; the default routes via the active ring.

        Served through the cluster's batched ``get_many`` fast path.
        Hit/miss composition, ordering, and duplicate-key accounting are
        bit-identical to :meth:`multiget_serial`.
        """
        assert self.cluster is not None
        result = MultigetResult()
        keys = list(keys)
        for key, value in zip(keys, self.cluster.get_many(keys, now)):
            if value is None:
                result.misses.append(key)
            else:
                result.hits[key] = value
                result.hit_count += 1
        return result

    def multiget_serial(
        self, keys: Iterable[str], now: float
    ) -> MultigetResult:
        """Per-key reference implementation of :meth:`multiget`.

        Kept as the equivalence oracle for the batched fast path (and
        selectable via ``ExperimentConfig.batched_ops=False``).
        """
        assert self.cluster is not None
        result = MultigetResult()
        for key in keys:
            value = self.cluster.get(key, now)
            if value is None:
                result.misses.append(key)
            else:
                result.hits[key] = value
                result.hit_count += 1
        return result

    def fill(self, key: str, value: Any, value_size: int, now: float) -> None:
        """Insert a DB-fetched pair into the cache (read-through fill)."""
        assert self.cluster is not None
        self.cluster.set(key, value, value_size, now)

    def fill_many(
        self, entries: Iterable[tuple[str, Any, int]], now: float
    ) -> None:
        """Batched read-through fill of ``(key, value, value_size)``.

        Per-node insertion order follows ``entries`` order, so the cache
        ends up bit-identical to per-pair :meth:`fill` calls.
        """
        assert self.cluster is not None
        self.cluster.set_many(entries, now)

    # -- helpers ---------------------------------------------------------

    def _log(self, now: float, kind: str, detail: str) -> None:
        self.events.append(ScalingEvent(now, kind, detail))

    def _new_node_names(self, count: int) -> list[str]:
        assert self.cluster is not None
        names = []
        while len(names) < count:
            candidate = f"node-{self._node_counter:03d}"
            self._node_counter += 1
            if candidate not in self.cluster.nodes:
                names.append(candidate)
        return names

    def _split_decision(self, target_nodes: int) -> int:
        assert self.cluster is not None
        if target_nodes < 1:
            raise MigrationError("target_nodes must be >= 1")
        return target_nodes - len(self.cluster.active_members)


class BaselinePolicy(MigrationPolicy):
    """Scale immediately with no data movement (cold caches)."""

    name = "baseline"

    def on_scale_decision(self, target_nodes: int, now: float) -> None:
        assert self.cluster is not None and self.master is not None
        delta = self._split_decision(target_nodes)
        if delta == 0:
            return
        if delta < 0:
            retiring = self.master.choose_retiring(-delta)
            retained = sorted(
                set(self.cluster.active_members) - set(retiring)
            )
            self.cluster.set_membership(retained)
            for name in retiring:
                self.cluster.destroy(name)
            self._log(now, "scale_in", f"retired {retiring} immediately")
        else:
            names = self._new_node_names(delta)
            for name in names:
                self.cluster.provision(name)
                self.cluster.activate(name)
            self._log(now, "scale_out", f"added cold nodes {names}")


class ElMemPolicy(MigrationPolicy):
    """The paper's system: FuseCache migration before the switch."""

    name = "elmem"

    def __init__(self) -> None:
        super().__init__()
        self._pending: tuple[float, MigrationPlan] | None = None

    @property
    def pending(self) -> bool:
        return self._pending is not None

    def on_scale_decision(self, target_nodes: int, now: float) -> None:
        assert self.cluster is not None and self.master is not None
        if self._pending is not None:
            self._log(now, "skipped", "migration already in flight")
            return
        delta = self._split_decision(target_nodes)
        if delta == 0:
            return
        if delta < 0:
            retiring = self.master.choose_retiring(-delta)
            plan = self.master.plan_scale_in(retiring, now=now)
            self._log(
                now,
                "plan_scale_in",
                f"retiring {retiring}, {plan.items_to_migrate} items, "
                f"{plan.duration_s:.1f}s migration",
            )
        else:
            names = self._new_node_names(delta)
            plan = self.master.plan_scale_out(names, now=now)
            self._log(
                now,
                "plan_scale_out",
                f"adding {names}, {plan.items_to_migrate} items, "
                f"{plan.duration_s:.1f}s migration",
            )
        self._pending = (now + plan.duration_s, plan)

    def tick(self, now: float) -> None:
        if self._pending is None:
            return
        due, plan = self._pending
        if now < due:
            return
        assert self.master is not None
        # Nodes may have died between the decision and now; re-plan the
        # migration around the survivors rather than shipping data to
        # (or from) ghosts.
        adapted = self.master.replan(plan)
        if adapted is None:
            self._pending = None
            if plan.kind == "scale_out":
                self.master.abort_scale_out(plan)
            else:
                plan.span.set(outcome="dropped")
                plan.span.end(sim_s=now)
            self._log(
                now,
                "replan_dropped",
                f"{plan.kind} obsolete: referenced nodes died; "
                f"membership {sorted(self.cluster.active_members)}",  # type: ignore[union-attr]
            )
            return
        if adapted is not plan:
            self._log(
                now,
                "replanned",
                f"{plan.kind} re-planned around dead nodes: "
                f"{adapted.items_to_migrate} items remain",
            )
            plan = adapted
        report = self.master.execute(plan, now=now)
        self.reports.append(report)
        self._pending = None
        detail = (
            f"{plan.kind} [{report.outcome}]: imported "
            f"{report.items_imported} items, "
            f"membership {report.membership_after}"
        )
        if report.retries:
            detail += f", {report.retries} retries"
        if report.failed_flows:
            detail += f", {len(report.failed_flows)} failed flows"
        if report.skipped_pairs:
            detail += f", {len(report.skipped_pairs)} skipped pairs"
        if report.abort_reason:
            detail += f", aborted: {report.abort_reason}"
        self._log(now, "executed", detail)


class NaivePolicy(MigrationPolicy):
    """Fraction-based migration off randomly chosen nodes (Section V-B4).

    When scaling in ``x`` of ``n`` nodes it assumes hotness is uniform
    across nodes, migrates the hottest ``(n-x)/n`` fraction of each random
    victim's items, and lets the batch import evict whatever falls off the
    retained nodes' tails -- possibly hot data, which is its failure mode.
    """

    name = "naive"

    def __init__(self) -> None:
        super().__init__()
        self._pending: tuple[float, MigrationPlan] | None = None

    @property
    def pending(self) -> bool:
        return self._pending is not None

    def on_scale_decision(self, target_nodes: int, now: float) -> None:
        assert self.cluster is not None and self.master is not None
        if self._pending is not None:
            return
        delta = self._split_decision(target_nodes)
        if delta == 0:
            return
        if delta > 0:
            # Naive has no warm-up story; behave like the baseline.
            names = self._new_node_names(delta)
            for name in names:
                self.cluster.provision(name)
                self.cluster.activate(name)
            self._log(now, "scale_out", f"added cold nodes {names}")
            return
        active = sorted(self.cluster.active_members)
        retiring = self.rng.sample(active, -delta)
        keep_fraction = (len(active) + delta) / len(active)
        plan = self.master.plan_fraction_scale_in(
            retiring, keep_fraction, now=now
        )
        # A naive dump-and-set migration does not carry MRU timestamps:
        # imported pairs land with fresh hotness (see batch_import).
        plan.import_mode = "fresh"
        self._pending = (now + plan.duration_s, plan)
        self._log(
            now,
            "plan_scale_in",
            f"random victims {sorted(retiring)}, keep {keep_fraction:.2f}, "
            f"{plan.items_to_migrate} items",
        )

    def tick(self, now: float) -> None:
        if self._pending is None:
            return
        due, plan = self._pending
        if now < due:
            return
        assert self.master is not None
        report = self.master.execute(plan, now=now)
        self.reports.append(report)
        self._pending = None
        self._log(now, "executed", f"imported {report.items_imported}")


class CacheScalePolicy(MigrationPolicy):
    """Passive request-driven migration with a secondary cache.

    Membership switches immediately; old owners are kept as a *secondary*
    tier.  A primary miss retries at the key's pre-scaling owner and, on
    a hit there, the pair is migrated to its new owner.  Secondaries are
    discarded ``discard_after_s`` seconds after the switch (the paper sets
    this to ElMem's ~2-minute overhead for a fair comparison).
    """

    name = "cachescale"

    def __init__(self, discard_after_s: float = 120.0) -> None:
        super().__init__()
        self.discard_after_s = discard_after_s
        self._secondary_ring: ConsistentHashRing | None = None
        self._secondary_only: set[str] = set()
        self._discard_at: float | None = None
        self.secondary_hits = 0
        self.secondary_misses = 0

    @property
    def pending(self) -> bool:
        return self._secondary_ring is not None

    def on_scale_decision(self, target_nodes: int, now: float) -> None:
        assert self.cluster is not None and self.master is not None
        if self._secondary_ring is not None:
            self._discard_secondaries(now)
        delta = self._split_decision(target_nodes)
        if delta == 0:
            return
        old_members = sorted(self.cluster.active_members)
        if delta < 0:
            retiring = self.master.choose_retiring(-delta)
            retained = sorted(set(old_members) - set(retiring))
            self.cluster.set_membership(retained)
            self._secondary_only = set(retiring)
            self._log(
                now, "scale_in", f"retired {retiring}; kept as secondary"
            )
        else:
            names = self._new_node_names(delta)
            for name in names:
                self.cluster.provision(name)
                self.cluster.activate(name)
            self._secondary_only = set()
            self._log(
                now, "scale_out", f"added {names}; old ring is secondary"
            )
        self._secondary_ring = self.cluster.ring_for(old_members)
        self._discard_at = now + self.discard_after_s

    def tick(self, now: float) -> None:
        if self._discard_at is not None and now >= self._discard_at:
            self._discard_secondaries(now)

    def multiget(self, keys: Iterable[str], now: float) -> MultigetResult:
        assert self.cluster is not None
        result = MultigetResult()
        for key in keys:
            primary = self.cluster.route(key)
            value = self.cluster.nodes[primary].get(key, now)
            if value is not None:
                result.hits[key] = value
                result.hit_count += 1
                continue
            migrated = self._try_secondary(key, primary, now)
            if migrated is not None:
                result.hits[key] = migrated
                result.hit_count += 1
                result.secondary_hits += 1
            else:
                result.misses.append(key)
        return result

    # The lookup path is inherently per-key (secondary probing with
    # on-hit migration), so the serial and batched paths coincide.
    multiget_serial = multiget

    # -- internals -------------------------------------------------------

    def _try_secondary(
        self, key: str, primary: str, now: float
    ) -> Any | None:
        if self._secondary_ring is None:
            return None
        old_owner = self._secondary_ring.node_for_key(key)
        if old_owner == primary:
            return None
        if self._secondary_only and old_owner not in self._secondary_only:
            return None
        node = self.cluster.nodes.get(old_owner) if self.cluster else None
        if node is None:
            return None
        item = node.peek(key)
        if item is None:
            self.secondary_misses += 1
            return None
        value, value_size = item.value, item.value_size
        node.delete(key)
        assert self.cluster is not None
        self.cluster.nodes[primary].set(key, value, value_size, now)
        self.secondary_hits += 1
        return value

    def _discard_secondaries(self, now: float) -> None:
        assert self.cluster is not None
        for name in sorted(self._secondary_only):
            if name in self.cluster.nodes:
                self.cluster.destroy(name)
        self._secondary_only = set()
        self._secondary_ring = None
        self._discard_at = None
        self._log(now, "discard", "secondary cache dropped")


POLICY_REGISTRY = {
    "baseline": BaselinePolicy,
    "elmem": ElMemPolicy,
    "naive": NaivePolicy,
    "cachescale": CacheScalePolicy,
}


def make_policy(name: str, **kwargs: Any) -> MigrationPolicy:
    """Instantiate a policy by registry name."""
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise MigrationError(f"unknown policy {name!r}") from None
    return factory(**kwargs)
