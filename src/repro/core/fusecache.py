"""The FuseCache algorithm (Section IV of the paper).

Problem: given ``k`` lists of MRU timestamps, each sorted hottest-first
(non-increasing), select the ``n`` hottest items overall and report *how
many to pick from the top of each list*.  During a scale-in, ``k-1`` lists
are the keys a retained node will inherit from retiring nodes and the
``k``-th is the retained node's own slab content; the answer tells every
node exactly which prefix of its MRU list to ship (Section III-D2).

FuseCache prunes with a recursive median-of-medians: each round computes
the median of the per-list window medians (MOM), counts the items hotter
than the MOM via one binary search per list, and either (a) discards
everything at or below the MOM when more than ``n`` items beat it, or (b)
commits everything hotter than the MOM and recurses on the remainder.  At
least a quarter of the search space dies per round, giving
``O(k (log n)^2)`` total time versus ``O(n log k)`` for a heap-based k-way
merge -- asymptotically better whenever ``n >> k``, the realistic regime
(billions of items, hundreds of nodes).

The module also implements both baselines from Section IV and the decision
-tree lower bound from Section IV-B1; property tests assert that all three
algorithms select the same multiset of timestamps.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from statistics import median_low
from typing import Sequence

from repro.errors import ConfigurationError

Timestamps = Sequence[float]


@dataclass
class FuseCacheResult:
    """Outcome of one FuseCache invocation.

    Attributes
    ----------
    topick:
        ``topick[i]`` is how many items to take from the top (hottest end)
        of list ``i``; the counts sum to ``min(n, total items)``.
    rounds:
        Median-of-medians rounds executed.
    comparisons:
        Timestamp comparisons performed (binary-search probes plus median
        selection), the cost measure used in the complexity benchmark.
    """

    topick: list[int]
    rounds: int = 0
    comparisons: int = 0

    @property
    def selected(self) -> int:
        """Total number of items selected."""
        return sum(self.topick)


def _check_sorted_desc(lists: Sequence[Timestamps]) -> None:
    for index, lst in enumerate(lists):
        for j in range(1, len(lst)):
            if lst[j] > lst[j - 1]:
                raise ConfigurationError(
                    f"list {index} is not sorted hottest-first at offset {j}"
                )


def _count_greater(
    lst: Timestamps, start: int, end: int, pivot: float
) -> tuple[int, int]:
    """Number of entries in ``lst[start:end]`` strictly hotter than ``pivot``.

    ``lst`` is sorted non-increasing.  Returns ``(count, probes)`` where
    ``probes`` is the number of comparisons the binary search made.
    """
    lo, hi, probes = start, end, 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        if lst[mid] > pivot:
            lo = mid + 1
        else:
            hi = mid
    return lo - start, probes


def _count_greater_equal(
    lst: Timestamps, start: int, end: int, pivot: float
) -> tuple[int, int]:
    """Like :func:`_count_greater` but counts entries ``>= pivot``."""
    lo, hi, probes = start, end, 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        if lst[mid] >= pivot:
            lo = mid + 1
        else:
            hi = mid
    return lo - start, probes


def fuse_cache_detailed(
    lists: Sequence[Timestamps],
    n: int,
    validate: bool = False,
) -> FuseCacheResult:
    """Run FuseCache and return per-list pick counts plus cost counters.

    Parameters
    ----------
    lists:
        ``k`` timestamp lists, each sorted non-increasing (MRU order).
    n:
        Number of hottest items to select.  If ``n`` meets or exceeds the
        total item count, every item is selected.
    validate:
        When true, verify the sortedness precondition in O(N) first.

    Ties are resolved arbitrarily but the selected *multiset* of timestamps
    always equals that of a full sort -- the property tests rely on this.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if validate:
        _check_sorted_desc(lists)

    k = len(lists)
    result = FuseCacheResult(topick=[0] * k)
    if k == 0 or n == 0:
        return result

    total = sum(len(lst) for lst in lists)
    if n >= total:
        result.topick = [len(lst) for lst in lists]
        return result

    # Window of still-undecided items per list: [start[i], end[i]).
    # Items before start[i] are committed to the answer; items at or after
    # end[i] are discarded.  Only indices whose window is non-empty are
    # tracked in ``active`` -- exhausted lists drop out of every later
    # round instead of being re-skipped k times per round.
    start = [0] * k
    end = [len(lst) for lst in lists]
    remaining = n
    active = [i for i in range(k) if end[i] > start[i]]

    # Each round discards or commits at least a quarter of the remaining
    # search space *provided the lists are sorted*; on unsorted input the
    # binary searches lie and the loop could spin, so fail loudly instead.
    max_rounds = 64 + 16 * (int(math.log2(total + 1)) + 1)

    hotter = [0] * k
    at_least = [0] * k
    while remaining > 0 and active:
        if len(active) == 1:
            # One undecided window left: it is sorted, so the hottest
            # ``remaining`` entries are simply its prefix.
            start[active[0]] += remaining
            remaining = 0
            break
        if result.rounds >= max_rounds:
            raise ConfigurationError(
                "FuseCache failed to converge -- input lists are "
                "probably not sorted hottest-first"
            )
        result.rounds += 1
        medians = [lists[i][(start[i] + end[i] - 1) // 2] for i in active]
        mom = median_low(medians)
        result.comparisons += len(medians)

        count_hotter = 0
        for i in active:
            count, probes = _count_greater(lists[i], start[i], end[i], mom)
            hotter[i] = count
            count_hotter += count
            result.comparisons += probes

        if count_hotter > remaining:
            # Too many items beat the MOM: the answer lies strictly above
            # it, so everything at or below the MOM can be discarded (and
            # the MOM-equal run never needs to be measured).
            for i in active:
                end[i] = start[i] + hotter[i]
        else:
            # Everything strictly hotter is at most the budget, so size
            # the MOM-equal run.  The first ``hotter[i]`` window entries
            # are already known to beat the MOM, so the second binary
            # search only spans the remainder of the window.
            count_at_least = count_hotter
            for i in active:
                count_ge, probes = _count_greater_equal(
                    lists[i], start[i] + hotter[i], end[i], mom
                )
                at_least[i] = hotter[i] + count_ge
                count_at_least += count_ge
                result.comparisons += probes
            if count_at_least <= remaining:
                # Everything at or above the MOM is certainly in the
                # answer.  Committing the MOM-equal run together with the
                # hotter items keeps the per-round progress at >= 1/4 of
                # the window even under heavy timestamp ties (coarse
                # clocks make ties the common case, and committing one
                # tie per round would degenerate to O(n) rounds).
                for i in active:
                    start[i] += at_least[i]
                remaining -= count_at_least
            else:
                # The boundary falls inside the MOM-equal run: commit all
                # hotter items, then MOM-equal items greedily, and finish.
                for i in active:
                    start[i] += hotter[i]
                remaining -= count_hotter
                for i in active:
                    if remaining == 0:
                        break
                    take = min(at_least[i] - hotter[i], remaining)
                    start[i] += take
                    remaining -= take
        active = [i for i in active if end[i] > start[i]]

    # Selection soundness (O(k)): on sorted input every committed value
    # is >= every value left behind, so the coldest committed boundary
    # must not fall below the hottest rejected boundary.  Unsorted input
    # makes the binary searches lie; when their window arithmetic is
    # cross-list inconsistent this catches it even if the loop happened
    # to terminate (the max_rounds cap only covers the spinning case).
    committed = [
        lists[i][start[i] - 1] for i in range(k) if start[i] > 0
    ]
    rejected = [
        lists[i][start[i]] for i in range(k) if start[i] < len(lists[i])
    ]
    result.comparisons += len(committed) + len(rejected)
    if committed and rejected and min(committed) < max(rejected):
        raise ConfigurationError(
            "FuseCache selection is inconsistent -- input lists are "
            "probably not sorted hottest-first"
        )

    result.topick = list(start)
    return result


def fuse_cache(
    lists: Sequence[Timestamps], n: int, validate: bool = False
) -> list[int]:
    """Convenience wrapper: just the per-list pick counts (Algorithm 1)."""
    return fuse_cache_detailed(lists, n, validate=validate).topick


def fuse_cache_algorithm1(
    lists: Sequence[Timestamps],
    n: int,
    max_rounds: int = 512,
) -> list[int]:
    """A literal rendition of the paper's printed Algorithm 1.

    The pseudocode as printed leaves several details ambiguous, which
    this rendition resolves as follows (each choice documented so the
    deviation from :func:`fuse_cache` is auditable):

    - ``insertionPt`` is read as the 0-based index at which the MOM
      would be inserted into the window keeping it sorted hottest-first,
      i.e. the count of items strictly hotter than the MOM;
    - ``curCountX <- insertPts[i] + 1`` therefore counts the hotter
      items *plus the boundary item*, so the commit branch
      (``startPt += insertPts + 1``) may commit one item per list that
      is at-or-below the MOM -- the printed algorithm is approximate at
      window boundaries, unlike the corrected :func:`fuse_cache`;
    - the final answer is taken from the committed prefixes (``startPt``)
      rather than the printed ``endPt + 1``, which does not type-check
      against the loop's exit condition.

    A round cap guards against the non-termination the printed rules
    allow (a correctly progressing run needs only O(log(n*k)) rounds, so
    the default cap of 512 is generous); leftover picks are completed
    greedily.  Kept as a fidelity artifact and exercised by the test
    suite; production code should use :func:`fuse_cache`.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    k = len(lists)
    if k == 0 or n == 0:
        return [0] * k
    total = sum(len(lst) for lst in lists)
    if n >= total:
        return [len(lst) for lst in lists]

    start = [0] * k
    end = [len(lst) - 1 for lst in lists]  # inclusive, as printed
    remaining = n
    rounds = 0
    while remaining > 0 and rounds < max_rounds:
        rounds += 1
        medians = [
            lists[i][(start[i] + end[i]) // 2]
            for i in range(k)
            if end[i] >= start[i]
        ]
        if not medians:
            break
        mom = median_low(medians)
        insert_points = [-1] * k
        count_x = 0
        for i in range(k):
            if end[i] < start[i]:
                continue
            hotter, _ = _count_greater(
                lists[i],
                start[i],
                min(end[i] + 1, len(lists[i])),
                mom,
            )
            insert_points[i] = hotter
            count_x += hotter + 1
        if count_x > remaining:
            for i in range(k):
                if insert_points[i] >= 0:
                    end[i] = min(
                        start[i] + insert_points[i], len(lists[i]) - 1
                    )
        else:
            for i in range(k):
                if insert_points[i] >= 0:
                    start[i] = min(
                        start[i] + insert_points[i] + 1, len(lists[i])
                    )
            remaining -= count_x

    # Greedy completion for any picks the printed rules left undecided.
    remaining = n - sum(start)
    for i in range(k):
        if remaining <= 0:
            break
        take = min(len(lists[i]) - start[i], remaining)
        start[i] += take
        remaining -= take
    return list(start)


def sort_merge_top_n(lists: Sequence[Timestamps], n: int) -> list[int]:
    """Baseline 1 (Section IV): concatenate, sort, take the top ``n``.

    ``O(N log N)`` time.  Returns per-list pick counts computed from the
    cut-off timestamp, with ties broken in list order.
    """
    merged = sorted(
        (value for lst in lists for value in lst),
        reverse=True,
    )
    if n >= len(merged):
        return [len(lst) for lst in lists]
    if n == 0:
        return [0] * len(lists)
    cutoff = merged[n - 1]
    ties_budget = sum(1 for value in merged[:n] if value == cutoff)
    picks: list[int] = []
    for lst in lists:
        above, _ = _count_greater(lst, 0, len(lst), cutoff)
        at_or_above, _ = _count_greater_equal(lst, 0, len(lst), cutoff)
        take_ties = min(at_or_above - above, ties_budget)
        ties_budget -= take_ties
        picks.append(above + take_ties)
    return picks


def kway_merge_top_n(lists: Sequence[Timestamps], n: int) -> list[int]:
    """Baseline 2 (Section IV): heap-based k-way merge, stop after ``n``.

    ``O(n log k)`` time -- the strongest conventional competitor, which
    FuseCache beats when ``n >> k``.
    """
    picks = [0] * len(lists)
    heap: list[tuple[float, int]] = []
    for i, lst in enumerate(lists):
        if lst:
            # Negate for a max-heap on hotness.
            heap.append((-lst[0], i))
    heapq.heapify(heap)
    taken = 0
    while heap and taken < n:
        _, i = heapq.heappop(heap)
        picks[i] += 1
        taken += 1
        offset = picks[i]
        if offset < len(lists[i]):
            heapq.heappush(heap, (-lists[i][offset], i))
    return picks


def selected_multiset(
    lists: Sequence[Timestamps], topick: Sequence[int]
) -> list[float]:
    """The sorted multiset of timestamps chosen by ``topick`` (test helper)."""
    chosen: list[float] = []
    for lst, count in zip(lists, topick):
        chosen.extend(lst[:count])
    return sorted(chosen, reverse=True)


def lower_bound_comparisons(n: int, k: int) -> float:
    """Information-theoretic lower bound from Section IV-B1.

    Any comparison-based algorithm needs ``log2 C(n+k-1, n)`` steps, which
    simplifies to ``O(k log n)``; FuseCache is within a ``log n`` factor.
    """
    if n < 0 or k < 1:
        raise ConfigurationError("need n >= 0 and k >= 1")
    return math.lgamma(n + k) / math.log(2) - (
        math.lgamma(n + 1) + math.lgamma(k)
    ) / math.log(2)
