"""Bounded exponential-backoff retry policy for migration flows.

The Master retries each failed data flow a bounded number of times with
exponentially growing (capped) backoff.  All delays are *modeled*
simulated seconds -- they are charged against the migration deadline and
recorded in :class:`~repro.core.master.PhaseTimings` and the
:class:`~repro.core.master.MigrationReport`, never slept for real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

JITTER_MODES = ("none", "decorrelated")
"""Supported jitter strategies for :class:`RetryPolicy`."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed flow, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts per flow including the first (1 = never retry).
    base_backoff_s:
        Modeled wait before the first retry.
    backoff_multiplier:
        Growth factor between consecutive backoffs.
    max_backoff_s:
        Cap on any single backoff.
    jitter:
        ``"none"`` (default) keeps the deterministic exponential
        schedule.  ``"decorrelated"`` draws each backoff uniformly from
        ``[base, min(cap, 3 * previous)]`` (the AWS "decorrelated
        jitter" chain), which de-synchronises clients that all failed at
        the same instant so their retries do not stampede a recovering
        backend.  Jittered delays are still fully deterministic: the
        chain is derived from the ``seed`` passed to :meth:`backoff_s`
        (callers give each client its own seed).
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: str = "none"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_s < 0:
            raise ConfigurationError("base_backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                "max_backoff_s must be >= base_backoff_s"
            )
        if self.jitter not in JITTER_MODES:
            raise ConfigurationError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}"
            )

    def backoff_s(self, failures: int, seed: int | None = None) -> float:
        """Modeled wait after the ``failures``-th consecutive failure.

        With ``jitter="decorrelated"`` the delay is drawn from a seeded
        decorrelated-jitter chain: the same ``(policy, seed, failures)``
        triple always yields the identical delay, so simulations and
        tests stay reproducible while distinct seeds (one per client)
        spread simultaneous retries apart.  ``seed`` is ignored when
        jitter is off; a jittered policy with no seed uses seed 0.
        """
        if failures < 1:
            raise ConfigurationError("failures must be >= 1")
        if self.jitter == "none":
            delay = self.base_backoff_s * self.backoff_multiplier ** (
                failures - 1
            )
            return min(delay, self.max_backoff_s)
        rng = random.Random(0 if seed is None else seed)
        delay = self.base_backoff_s
        for _ in range(failures):
            ceiling = min(
                self.max_backoff_s,
                max(self.base_backoff_s, 3.0 * delay),
            )
            delay = rng.uniform(self.base_backoff_s, ceiling)
        return delay

    def total_backoff_s(self) -> float:
        """Worst-case modeled wait if every attempt fails.

        For jittered policies this is the upper envelope of the
        decorrelated chain (each draw is at most ``3x`` the previous,
        capped), not any particular seed's realisation.
        """
        if self.jitter == "none":
            return sum(
                self.backoff_s(failure)
                for failure in range(1, self.max_attempts)
            )
        total = 0.0
        ceiling = self.base_backoff_s
        for _ in range(1, self.max_attempts):
            ceiling = min(
                self.max_backoff_s,
                max(self.base_backoff_s, 3.0 * ceiling),
            )
            total += ceiling
        return total


NO_RETRY = RetryPolicy(max_attempts=1)
"""A policy that gives up on the first failure."""
