"""Bounded exponential-backoff retry policy for migration flows.

The Master retries each failed data flow a bounded number of times with
exponentially growing (capped) backoff.  All delays are *modeled*
simulated seconds -- they are charged against the migration deadline and
recorded in :class:`~repro.core.master.PhaseTimings` and the
:class:`~repro.core.master.MigrationReport`, never slept for real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed flow, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts per flow including the first (1 = never retry).
    base_backoff_s:
        Modeled wait before the first retry.
    backoff_multiplier:
        Growth factor between consecutive backoffs.
    max_backoff_s:
        Cap on any single backoff.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_s < 0:
            raise ConfigurationError("base_backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                "max_backoff_s must be >= base_backoff_s"
            )

    def backoff_s(self, failures: int) -> float:
        """Modeled wait after the ``failures``-th consecutive failure."""
        if failures < 1:
            raise ConfigurationError("failures must be >= 1")
        delay = self.base_backoff_s * self.backoff_multiplier ** (failures - 1)
        return min(delay, self.max_backoff_s)

    def total_backoff_s(self) -> float:
        """Worst-case modeled wait if every attempt fails."""
        return sum(
            self.backoff_s(failure)
            for failure in range(1, self.max_attempts)
        )


NO_RETRY = RetryPolicy(max_attempts=1)
"""A policy that gives up on the first failure."""
