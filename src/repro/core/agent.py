"""The per-node Agent (Section III-A/III-D).

One Agent runs on every Memcached node.  Agents do the actual work of
migration: dumping MRU timestamps, hashing keys against the post-scaling
membership, shipping metadata and KV data to peers, and importing
migrated pairs into the local Memcached.  The Master only coordinates.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.interfaces import CacheNode
from repro.hashing.ketama import ConsistentHashRing
from repro.memcached.node import MigratedItem

TIMESTAMP_BYTES = 10
"""Bytes per serialized MRU timestamp in a metadata dump (paper III-D1)."""


class Agent:
    """Migration agent co-located with one Memcached node."""

    def __init__(self, node: CacheNode) -> None:
        self.node = node

    @property
    def name(self) -> str:
        """The node this agent manages."""
        return self.node.name

    # ------------------------------------------------------------------
    # Phase 1: metadata dump, hashed against the post-scaling membership
    # ------------------------------------------------------------------

    def dump_and_hash(
        self, target_ring: ConsistentHashRing
    ) -> dict[str, dict[int, list[tuple[str, float]]]]:
        """Group this node's items by (target node, slab class).

        Iterates every slab class and hashes each key against
        ``target_ring`` (the membership that will exist *after* scaling),
        so each target receives per-class key/timestamp lists sorted
        hottest-first -- the exact FuseCache input.

        The lists are explicitly re-sorted by timestamp: MRU-list order
        equals timestamp order on an untouched cache, but the paper's
        head-prepending batch import (and any ``fresh``-mode migration)
        perturbs it, and FuseCache's binary searches silently misbehave
        on unsorted input.
        """
        grouped: dict[str, dict[int, list[tuple[str, float]]]] = {}
        for class_id in self.node.active_class_ids():
            for key, timestamp in self.node.dump_timestamps(class_id):
                target = target_ring.node_for_key(key)
                if target == self.name:
                    continue
                per_class = grouped.setdefault(target, {})
                per_class.setdefault(class_id, []).append((key, timestamp))
        for per_class in grouped.values():
            for entries in per_class.values():
                entries.sort(key=lambda pair: pair[1], reverse=True)
        return grouped

    def sorted_timestamps(self, class_id: int) -> list[float]:
        """This node's own slab timestamps, hottest-first (FuseCache's
        ``k``-th list), robust to prepend-mode order drift."""
        timestamps = [
            item.last_access
            for item in self.node.items_in_mru_order(class_id)
        ]
        timestamps.sort(reverse=True)
        return timestamps

    @staticmethod
    def metadata_bytes(
        per_class: Mapping[int, list[tuple[str, float]]]
    ) -> int:
        """Wire size of one metadata dump: keys plus 10-byte timestamps."""
        total = 0
        for entries in per_class.values():
            for key, _ in entries:
                total += len(key) + TIMESTAMP_BYTES
        return total

    # ------------------------------------------------------------------
    # Phase 3: data export / import
    # ------------------------------------------------------------------

    def export_items(self, keys: Iterable[str]) -> list[MigratedItem]:
        """Read full KV pairs for ``keys``; silently skips evicted keys."""
        return self.node.export_items(keys)

    def import_items(
        self,
        migrated: Iterable[MigratedItem],
        mode: str = "merge",
        now: float = 0.0,
    ) -> int:
        """Install migrated pairs via the batch-import command."""
        return self.node.batch_import(migrated, mode=mode, now=now)

    # ------------------------------------------------------------------
    # Modeled local costs (fault-aware)
    # ------------------------------------------------------------------

    MIN_RATE_FACTOR = 1e-3
    """Floor for stall factors: a fully stalled node still crawls at
    0.1% throughput, which blows any reasonable migration deadline
    without dividing by zero."""

    def dump_seconds(
        self, item_count: int, rate_items_s: float, stall_factor: float = 1.0
    ) -> float:
        """Modeled seconds to dump+hash ``item_count`` items locally,
        slowed by an injected ``stall_factor`` (1.0 = healthy)."""
        factor = max(stall_factor, self.MIN_RATE_FACTOR)
        return item_count / (rate_items_s * factor)

    def import_seconds(
        self, item_count: int, rate_items_s: float, stall_factor: float = 1.0
    ) -> float:
        """Modeled seconds to batch-import ``item_count`` items locally,
        slowed by an injected ``stall_factor`` (1.0 = healthy)."""
        factor = max(stall_factor, self.MIN_RATE_FACTOR)
        return item_count / (rate_items_s * factor)

    # ------------------------------------------------------------------
    # Scoring support (Section III-C)
    # ------------------------------------------------------------------

    def median_report(self) -> dict[int, float]:
        """Median MRU timestamp per non-empty slab class."""
        report: dict[int, float] = {}
        for class_id in self.node.active_class_ids():
            median = self.node.median_timestamp(class_id)
            if median is not None:
                report[class_id] = median
        return report

    def slab_capacity_items(self, class_id: int) -> int:
        """Items the node could hold in ``class_id`` after the merge.

        Counts chunks in pages already assigned to the class plus chunks
        the class could carve from still-free pages -- the ``n`` that
        FuseCache selects for (Section IV: "a retained node that has space
        for n items in that slab").
        """
        slab_class = self.node.slabs.classes[class_id]
        expandable = self.node.slabs.free_pages * slab_class.chunks_per_page
        return slab_class.total_chunks + expandable
