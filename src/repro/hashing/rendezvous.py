"""Rendezvous (highest-random-weight) hashing.

An alternative placement function used in the ablation benchmarks: it gives
perfectly minimal remapping on membership change at the cost of O(k) lookup
per key, versus the ring's O(log k·vnodes).

Mirrors the ketama ring's hot-path surface: a per-membership keyed lookup
cache over :meth:`RendezvousHash.node_for_key` (the O(k) scan is even more
expensive than the ring's binary search, so caching pays off sooner), a
batched :meth:`RendezvousHash.lookup_many`, and a generation counter that
turns mid-flight membership mutation into a loud
:class:`~repro.errors.RingMutationError`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigurationError, MembershipError, RingMutationError
from repro.hashing.hashutil import hash64
from repro.hashing.ketama import DEFAULT_LOOKUP_CACHE


class RendezvousHash:
    """Highest-random-weight key-to-node mapping over named nodes."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        lookup_cache_size: int = DEFAULT_LOOKUP_CACHE,
    ) -> None:
        if lookup_cache_size < 0:
            raise ConfigurationError(
                f"lookup_cache_size must be >= 0, got {lookup_cache_size}"
            )
        self._members: set[str] = set()
        self._cache: dict[str, str] = {}
        self._cache_max = lookup_cache_size
        self._generation = 0
        self.cache_hits = 0
        self.cache_misses = 0
        for node in nodes:
            self.add_node(node)

    @property
    def members(self) -> frozenset[str]:
        """The current set of node names."""
        return frozenset(self._members)

    @property
    def generation(self) -> int:
        """Membership-change counter; bumps on every add/remove."""
        return self._generation

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def _invalidate(self) -> None:
        self._generation += 1
        if self._cache:
            self._cache.clear()

    def add_node(self, node: str) -> None:
        """Add ``node``; raises if already present."""
        if node in self._members:
            raise MembershipError(f"node {node!r} already a member")
        self._invalidate()
        self._members.add(node)

    def remove_node(self, node: str) -> None:
        """Remove ``node``; raises if absent."""
        if node not in self._members:
            raise MembershipError(f"node {node!r} not a member")
        self._invalidate()
        self._members.remove(node)

    def set_members(self, nodes: Iterable[str]) -> None:
        """Reset membership to exactly ``nodes``."""
        self._invalidate()
        self._members = set(nodes)

    def uncached_lookup(self, key: str) -> str:
        """Owner of ``key`` computed from scratch (cache bypassed)."""
        if not self._members:
            raise MembershipError("no members")
        return max(self._members, key=lambda node: hash64(f"{node}:{key}"))

    def node_for_key(self, key: str) -> str:
        """Return the member with the highest combined hash for ``key``."""
        owner = self._cache.get(key)
        if owner is not None:
            self.cache_hits += 1
            return owner
        self.cache_misses += 1
        owner = self.uncached_lookup(key)
        if self._cache_max:
            cache = self._cache
            if len(cache) >= self._cache_max:
                del cache[next(iter(cache))]
            cache[key] = owner
        return owner

    lookup = node_for_key

    def lookup_many(self, keys: Iterable[str]) -> list[str]:
        """Owners for ``keys`` in order; raises
        :class:`RingMutationError` if membership changes mid-stream."""
        if not self._members:
            raise MembershipError("no members")
        cache = self._cache
        if type(keys) is list:
            # Warm-cache fast path: pure dict reads cannot mutate the
            # membership, so no generation checks are needed.
            try:
                owners = [cache[key] for key in keys]
            except KeyError:
                pass
            else:
                self.cache_hits += len(owners)
                return owners
        generation = self._generation
        owners = []
        for key in keys:
            if self._generation != generation:
                # Mutation clears the cache, so the first post-mutation
                # key is a cache miss; node_for_key would recompute it
                # under the new membership -- refuse instead.
                raise RingMutationError(
                    "membership changed during an in-flight lookup_many()"
                )
            owners.append(self.node_for_key(key))
        if self._generation != generation:
            raise RingMutationError(
                "membership changed during an in-flight lookup_many()"
            )
        return owners

    def nodes_for_keys(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning node."""
        grouped: dict[str, list[str]] = {}
        keys = list(keys)
        for key, owner in zip(keys, self.lookup_many(keys)):
            grouped.setdefault(owner, []).append(key)
        return grouped

    def cache_info(self) -> dict[str, int]:
        """Lookup-cache statistics (size, capacity, hit/miss counters)."""
        return {
            "size": len(self._cache),
            "max_size": self._cache_max,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "generation": self._generation,
        }

    def cached_routes(self) -> dict[str, str]:
        """Snapshot of the lookup cache (key -> owner)."""
        return dict(self._cache)
