"""Rendezvous (highest-random-weight) hashing.

An alternative placement function used in the ablation benchmarks: it gives
perfectly minimal remapping on membership change at the cost of O(k) lookup
per key, versus the ring's O(log k·vnodes).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MembershipError
from repro.hashing.hashutil import hash64


class RendezvousHash:
    """Highest-random-weight key-to-node mapping over named nodes."""

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._members: set[str] = set()
        for node in nodes:
            self.add_node(node)

    @property
    def members(self) -> frozenset[str]:
        """The current set of node names."""
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add_node(self, node: str) -> None:
        """Add ``node``; raises if already present."""
        if node in self._members:
            raise MembershipError(f"node {node!r} already a member")
        self._members.add(node)

    def remove_node(self, node: str) -> None:
        """Remove ``node``; raises if absent."""
        if node not in self._members:
            raise MembershipError(f"node {node!r} not a member")
        self._members.remove(node)

    def set_members(self, nodes: Iterable[str]) -> None:
        """Reset membership to exactly ``nodes``."""
        self._members = set(nodes)

    def node_for_key(self, key: str) -> str:
        """Return the member with the highest combined hash for ``key``."""
        if not self._members:
            raise MembershipError("no members")
        return max(self._members, key=lambda node: hash64(f"{node}:{key}"))

    def nodes_for_keys(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning node."""
        grouped: dict[str, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.node_for_key(key), []).append(key)
        return grouped
