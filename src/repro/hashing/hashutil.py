"""Stable, seed-free hash primitives.

Python's builtin :func:`hash` is randomised per process, which would make
simulations non-reproducible, so all key placement goes through MD5-derived
integers instead.
"""

import hashlib
from functools import lru_cache

# Key populations are bounded (the simulator's datasets are a few hundred
# thousand keys) and every request hashes its keys for routing, so the
# digests are memoised.  2^20 entries comfortably cover the datasets.
_CACHE_SIZE = 1 << 20


@lru_cache(maxsize=_CACHE_SIZE)
def hash64(data: str | bytes) -> int:
    """Return a stable unsigned 64-bit hash of ``data``.

    The value is the first 8 bytes of the MD5 digest, interpreted big-endian.
    This matches the spirit of libmemcached's ketama behaviour and is stable
    across processes and platforms.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.md5(data).digest()
    return int.from_bytes(digest[:8], "big")


@lru_cache(maxsize=_CACHE_SIZE)
def hash32(data: str | bytes) -> int:
    """Return a stable unsigned 32-bit hash of ``data`` (MD5 prefix)."""
    return hash64(data) >> 32


def points_for_vnode(label: str, count: int) -> list[int]:
    """Return ``count`` stable 32-bit ring points for a virtual-node label.

    Each MD5 digest yields four 4-byte points, mirroring the classic ketama
    construction where one hash call feeds four ring positions.
    """
    points: list[int] = []
    rounds = (count + 3) // 4
    for i in range(rounds):
        digest = hashlib.md5(f"{label}-{i}".encode("utf-8")).digest()
        for j in range(4):
            if len(points) == count:
                break
            points.append(int.from_bytes(digest[4 * j : 4 * j + 4], "big"))
    return points
