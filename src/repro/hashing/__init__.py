"""Client-side key-to-node mapping.

Memcached servers are unaware of key ownership; the client library hashes
each key to pick the node (Section II-A of the paper).  Consistent hashing
keeps the remapped key fraction near ``1/(k+1)`` when membership changes,
which is what makes the paper's scale-out migration cheap (Section III-D4).
"""

from repro.hashing.hashutil import hash64
from repro.hashing.ketama import ConsistentHashRing
from repro.hashing.rendezvous import RendezvousHash

__all__ = ["ConsistentHashRing", "RendezvousHash", "hash64"]
