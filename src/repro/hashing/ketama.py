"""Ketama-style consistent hashing ring.

This is the client-side placement function used by ``libmemcached`` in the
paper's testbed.  Each node contributes many virtual points on a 32-bit ring;
a key is owned by the first point clockwise from its hash.  Removing one of
``k+1`` nodes remaps roughly ``1/(k+1)`` of the keys, and only to surviving
nodes -- the property ElMem's scale-out path relies on (Section III-D4).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError, MembershipError
from repro.hashing.hashutil import hash32, points_for_vnode

DEFAULT_VNODES = 160


class ConsistentHashRing:
    """A consistent-hash ring over a set of named nodes.

    Parameters
    ----------
    nodes:
        Initial node names.
    vnodes:
        Virtual points per node (per unit weight).  More points give better
        balance at the cost of a larger ring.
    weights:
        Optional per-node weight multipliers for heterogeneous nodes.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
        weights: dict[str, float] | None = None,
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._weights = dict(weights or {})
        self._points: list[int] = []
        self._owners: list[str] = []
        self._members: set[str] = set()
        for node in nodes:
            self.add_node(node)

    @property
    def members(self) -> frozenset[str]:
        """The current set of node names on the ring."""
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add_node(self, node: str, weight: float | None = None) -> None:
        """Add ``node`` to the ring; raises if it is already a member."""
        if node in self._members:
            raise MembershipError(f"node {node!r} already on the ring")
        if weight is not None:
            self._weights[node] = weight
        self._members.add(node)
        count = max(1, round(self._vnodes * self._weights.get(node, 1.0)))
        for point in points_for_vnode(node, count):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` from the ring; raises if it is not a member."""
        if node not in self._members:
            raise MembershipError(f"node {node!r} not on the ring")
        self._members.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def set_members(self, nodes: Iterable[str]) -> None:
        """Reset ring membership to exactly ``nodes``."""
        target = set(nodes)
        for node in list(self._members - target):
            self.remove_node(node)
        for node in sorted(target - self._members):
            self.add_node(node)

    def iter_points(self) -> Iterator[tuple[int, str]]:
        """Yield ``(point, owner)`` pairs in ring order.

        Read-only introspection for balance analysis and the
        :func:`repro.check.invariants.check_ring` validator; the pairs
        are yielded ascending by point.
        """
        yield from zip(self._points, self._owners)

    def vnode_counts(self) -> dict[str, int]:
        """Virtual points currently owned by each member."""
        counts: dict[str, int] = {name: 0 for name in self._members}
        for owner in self._owners:
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def node_for_key(self, key: str) -> str:
        """Return the node owning ``key``; raises if the ring is empty."""
        if not self._points:
            raise MembershipError("hash ring is empty")
        point = hash32(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def nodes_for_keys(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning node (one ring lookup per key)."""
        grouped: dict[str, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.node_for_key(key), []).append(key)
        return grouped
