"""Ketama-style consistent hashing ring.

This is the client-side placement function used by ``libmemcached`` in the
paper's testbed.  Each node contributes many virtual points on a 32-bit ring;
a key is owned by the first point clockwise from its hash.  Removing one of
``k+1`` nodes remaps roughly ``1/(k+1)`` of the keys, and only to surviving
nodes -- the property ElMem's scale-out path relies on (Section III-D4).

Lookups are the hottest operation in the whole simulator (every simulated
request routes each of its keys), so the ring keeps a **per-membership
lookup cache**: a keyed LRU mapping key -> owner that turns the md5 +
binary-search lookup into a single dict probe.  The cache is invalidated
wholesale on any membership change, and a monotonically increasing
*generation* counter lets batched lookups detect mid-flight mutation and
fail loudly instead of returning routes computed on mixed memberships.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError, MembershipError, RingMutationError
from repro.hashing.hashutil import hash32, points_for_vnode

DEFAULT_VNODES = 160

# Key populations in the simulator are a few hundred thousand; a cache of
# 2^17 entries holds the hot working set while bounding worst-case memory.
DEFAULT_LOOKUP_CACHE = 1 << 17


class ConsistentHashRing:
    """A consistent-hash ring over a set of named nodes.

    Parameters
    ----------
    nodes:
        Initial node names.
    vnodes:
        Virtual points per node (per unit weight).  More points give better
        balance at the cost of a larger ring.
    weights:
        Optional per-node weight multipliers for heterogeneous nodes.
    lookup_cache_size:
        Maximum entries in the key -> owner lookup cache (0 disables
        caching entirely; useful for benchmarking the cold path).
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
        weights: dict[str, float] | None = None,
        lookup_cache_size: int = DEFAULT_LOOKUP_CACHE,
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        if lookup_cache_size < 0:
            raise ConfigurationError(
                f"lookup_cache_size must be >= 0, got {lookup_cache_size}"
            )
        self._vnodes = vnodes
        self._weights = dict(weights or {})
        self._points: list[int] = []
        self._owners: list[str] = []
        self._members: set[str] = set()
        # Lookup cache: key -> owner under the *current* membership only.
        self._cache: dict[str, str] = {}
        self._cache_max = lookup_cache_size
        self._generation = 0
        self.cache_hits = 0
        self.cache_misses = 0
        for node in nodes:
            self.add_node(node)

    @property
    def members(self) -> frozenset[str]:
        """The current set of node names on the ring."""
        return frozenset(self._members)

    @property
    def generation(self) -> int:
        """Membership-change counter; bumps on every add/remove."""
        return self._generation

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def _invalidate(self) -> None:
        """Drop the lookup cache and mark a new membership generation."""
        self._generation += 1
        if self._cache:
            self._cache.clear()

    def add_node(self, node: str, weight: float | None = None) -> None:
        """Add ``node`` to the ring; raises if it is already a member."""
        if node in self._members:
            raise MembershipError(f"node {node!r} already on the ring")
        if weight is not None:
            self._weights[node] = weight
        self._invalidate()
        self._members.add(node)
        count = max(1, round(self._vnodes * self._weights.get(node, 1.0)))
        for point in points_for_vnode(node, count):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` from the ring; raises if it is not a member."""
        if node not in self._members:
            raise MembershipError(f"node {node!r} not on the ring")
        self._invalidate()
        self._members.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def set_members(self, nodes: Iterable[str]) -> None:
        """Reset ring membership to exactly ``nodes``."""
        target = set(nodes)
        for node in list(self._members - target):
            self.remove_node(node)
        for node in sorted(target - self._members):
            self.add_node(node)

    def iter_points(self) -> Iterator[tuple[int, str]]:
        """Yield ``(point, owner)`` pairs in ring order.

        Read-only introspection for balance analysis and the
        :func:`repro.check.invariants.check_ring` validator; the pairs
        are yielded ascending by point.  Mutating the ring while the
        iterator is live raises :class:`RingMutationError` -- a point
        list belonging to a dead membership must not be walked further.
        """
        generation = self._generation
        for pair in zip(self._points, self._owners):
            if self._generation != generation:
                raise RingMutationError(
                    "ring membership changed during iter_points()"
                )
            yield pair

    def vnode_counts(self) -> dict[str, int]:
        """Virtual points currently owned by each member."""
        counts: dict[str, int] = {name: 0 for name in self._members}
        for owner in self._owners:
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def uncached_lookup(self, key: str) -> str:
        """Owner of ``key`` computed from scratch (cache bypassed).

        The reference slow path: one 32-bit hash plus a binary search over
        the virtual points.  Used by the invariant checker to audit cache
        entries and by the benchmark gate to measure the cold path.
        """
        if not self._points:
            raise MembershipError("hash ring is empty")
        point = hash32(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def node_for_key(self, key: str) -> str:
        """Return the node owning ``key``; raises if the ring is empty.

        Served from the keyed-LRU lookup cache when possible; a miss
        falls back to :meth:`uncached_lookup` and populates the cache.
        """
        cache = self._cache
        owner = cache.get(key)
        if owner is not None:
            self.cache_hits += 1
            return owner
        if not self._points:
            raise MembershipError("hash ring is empty")
        self.cache_misses += 1
        point = hash32(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        owner = self._owners[index]
        if self._cache_max:
            if len(cache) >= self._cache_max:
                # Evict the least recently inserted entry (insertion order
                # approximates recency: hot keys are re-inserted after
                # every invalidation and the population is bounded).
                del cache[next(iter(cache))]
            cache[key] = owner
        return owner

    # ``lookup``/``lookup_many`` are the batched-routing surface the
    # cluster's multi-get path uses; ``node_for_key`` remains the
    # historical per-key name.
    lookup = node_for_key

    def lookup_many(self, keys: Iterable[str]) -> list[str]:
        """Owners for ``keys``, one per key, in order.

        One cache probe per key with a single shared fallback to the
        cold path.  ``keys`` may be a lazy iterable; if consuming it
        mutates the ring (membership change mid-stream), the batch is
        abandoned with :class:`RingMutationError` rather than returning
        routes computed on a mix of memberships.
        """
        if not self._points:
            raise MembershipError("hash ring is empty")
        cache = self._cache
        if type(keys) is list:
            # Warm-cache fast path: a pure dict-read comprehension (no
            # side effects, so the ring cannot mutate mid-batch).
            try:
                owners = [cache[key] for key in keys]
            except KeyError:
                pass
            else:
                self.cache_hits += len(owners)
                return owners
        generation = self._generation
        cache_get = cache.get
        points = self._points
        owners_list = self._owners
        npoints = len(points)
        cache_max = self._cache_max
        owners = []
        append = owners.append
        hits = 0
        misses = 0
        for key in keys:
            owner = cache_get(key)
            if owner is None:
                # A membership change (even one triggered by consuming a
                # lazy ``keys`` iterable) clears the cache, so the first
                # post-mutation key always lands here -- checking the
                # generation only on misses still catches every torn
                # batch before a stale route can escape.
                if self._generation != generation:
                    raise RingMutationError(
                        "ring membership changed during an in-flight "
                        "lookup_many()"
                    )
                misses += 1
                point = hash32(key)
                index = bisect.bisect(points, point)
                if index == npoints:
                    index = 0
                owner = owners_list[index]
                if cache_max:
                    if len(cache) >= cache_max:
                        del cache[next(iter(cache))]
                    cache[key] = owner
            else:
                hits += 1
            append(owner)
        if self._generation != generation:
            raise RingMutationError(
                "ring membership changed during an in-flight lookup_many()"
            )
        self.cache_hits += hits
        self.cache_misses += misses
        return owners

    def nodes_for_keys(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning node (one cached ring lookup per key)."""
        grouped: dict[str, list[str]] = {}
        keys = list(keys)
        for key, owner in zip(keys, self.lookup_many(keys)):
            grouped.setdefault(owner, []).append(key)
        return grouped

    def cache_info(self) -> dict[str, int]:
        """Lookup-cache statistics (size, capacity, hit/miss counters)."""
        return {
            "size": len(self._cache),
            "max_size": self._cache_max,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "generation": self._generation,
        }

    def cached_routes(self) -> dict[str, str]:
        """Snapshot of the lookup cache (key -> owner).

        Read-only introspection for
        :func:`repro.check.invariants.check_ring`, which audits every
        cached route against :meth:`uncached_lookup`.
        """
        return dict(self._cache)
