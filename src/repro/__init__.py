"""Reproduction of *ElMem: Towards an Elastic Memcached System* (ICDCS 2018).

The package is organised as one subpackage per subsystem:

- :mod:`repro.memcached` -- in-process model of a Memcached node/cluster
  (slab allocator, per-class MRU lists, O(1) LRU eviction).
- :mod:`repro.hashing` -- client-side key-to-node mapping (ketama consistent
  hashing and rendezvous hashing).
- :mod:`repro.database` -- the persistent back-end store with a load-dependent
  latency model (the tier whose overload causes post-scaling degradation).
- :mod:`repro.netsim` -- bandwidth/latency model used to time data migration.
- :mod:`repro.cache_analysis` -- stack-distance and MIMIR hit-rate-curve
  machinery used by the AutoScaler.
- :mod:`repro.workloads` -- Zipf popularity, Generalized-Pareto value sizes,
  and the five demand traces of Fig. 5.
- :mod:`repro.sim` -- the discrete-time multi-tier application simulator.
- :mod:`repro.core` -- the paper's contribution: the FuseCache algorithm, the
  AutoScaler, node scoring, the Master/Agent migration protocol, and the
  migration policies (ElMem, Naive, CacheScale, no-migration baseline).
- :mod:`repro.faults` -- seeded, clock-driven fault injection (node
  crashes, throughput stalls, flow failures) used by the robustness
  experiments.
- :mod:`repro.analysis` -- degradation metrics, cost/energy model, and the
  elasticity-potential analysis.
"""

from repro.core.elmem import ElMemController
from repro.core.fusecache import fuse_cache
from repro.core.retry import RetryPolicy
from repro.errors import FaultError, FlowTimeoutError, MigrationAbortedError
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.memcached.cluster import MemcachedCluster
from repro.memcached.node import MemcachedNode

__version__ = "1.0.0"

__all__ = [
    "ElMemController",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FlowTimeoutError",
    "MemcachedCluster",
    "MemcachedNode",
    "MigrationAbortedError",
    "RetryPolicy",
    "fuse_cache",
    "__version__",
]
