"""In-flight get coalescing: one backend fetch per hot key.

When many clients miss on the same key at the same moment, a naive
proxy forwards every one of them -- the *thundering herd* that turns a
single hot-key expiry into a backend (and ultimately database) storm.
:class:`GetCoalescer` collapses those concurrent fetches: the first
request for a key becomes the **leader** and actually goes to the
backend; every request that arrives while the leader is in flight
becomes a **follower** and simply awaits the leader's result.

The coalescer is deliberately memoryless: the moment the leader's fetch
resolves, the key leaves the in-flight table, so sequential requests are
never served a cached answer -- this is request collapsing, not a cache.
Leader failures propagate to every follower (they would all have hit the
same dead backend), and a cancelled follower never cancels the shared
fetch.

``proxy_coalesce_leaders_total`` / ``proxy_coalesce_followers_total``
count the split; the hot-key-storm test asserts the follower share --
the *collapse ratio* -- stays above 90%.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS


class GetCoalescer:
    """Collapses concurrent same-key fetches behind one loader call."""

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        metrics = (telemetry or NULL_TELEMETRY).metrics
        self._obs = bool(metrics.enabled)
        self._m_leaders = metrics.counter(
            "proxy_coalesce_leaders_total",
            "Key fetches that actually went to a backend",
        )
        self._m_followers = metrics.counter(
            "proxy_coalesce_followers_total",
            "Key fetches collapsed onto an in-flight leader",
        )
        self._m_wait = metrics.histogram(
            "proxy_coalesce_wait_seconds",
            "Time followers spend awaiting an in-flight leader fetch",
            buckets=LATENCY_SECONDS_BUCKETS,
        )

    @property
    def inflight(self) -> int:
        """Number of keys with a leader fetch currently in flight."""
        return len(self._inflight)

    async def fetch(
        self, key: str, loader: Callable[[], Awaitable[Any]]
    ) -> Any:
        """Return ``loader()``'s result, sharing it with concurrent callers.

        The first caller for ``key`` runs ``loader`` for real; callers
        arriving before it resolves await the same outcome (result or
        exception) without touching the backend.
        """
        pending = self._inflight.get(key)
        if pending is not None:
            self._m_followers.inc()
            # shield(): a follower timing out / being cancelled must not
            # cancel the shared future out from under the leader.
            if not self._obs:
                return await asyncio.shield(pending)
            start = time.perf_counter()
            try:
                return await asyncio.shield(pending)
            finally:
                self._m_wait.observe(time.perf_counter() - start)
        self._m_leaders.inc()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await loader()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
                # Mark the exception retrieved so a leader with no
                # followers does not log "exception never retrieved".
                future.exception()
            raise
        else:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_result(result)
            return result
