"""Per-backend circuit breakers for the proxy tier.

A :class:`CircuitBreaker` guards one backend connection pool with the
classic three-state machine:

- **closed** -- traffic flows; consecutive transport failures are
  counted, and crossing ``failure_threshold`` trips the breaker open.
- **open** -- every request is rejected locally (fail-fast, no socket
  touched) until ``open_duration_s`` has elapsed, at which point the
  next request is admitted as a probe and the breaker moves to
  half-open.
- **half-open** -- at most one probe request is in flight at a time;
  ``close_after`` consecutive probe successes close the breaker, any
  probe failure re-opens it (and restarts the open timer).

The breaker never raises by itself: callers ask :meth:`allow` before a
request and report the outcome with :meth:`record_success` /
:meth:`record_failure`.  The proxy router turns a ``False`` verdict into
:class:`~repro.errors.CircuitOpenError` internally and degrades the
client-visible operation to a miss/no-op.

State is observable through :mod:`repro.obs`: a per-backend
``proxy_breaker_state`` gauge (0=closed, 1=open, 2=half-open) and a
``proxy_breaker_transitions_total{backend,to}`` counter, which is what
the chaos tests assert on.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs import NULL_TELEMETRY, Telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}
"""Gauge encoding of breaker states."""


class CircuitBreaker:
    """Closed/open/half-open failure gate for one backend.

    Parameters
    ----------
    backend:
        Backend node name, used for metric labels.
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    open_duration_s:
        How long the breaker stays open before admitting a probe.
    close_after:
        Consecutive half-open probe successes required to close.
    clock:
        Zero-argument time source; defaults to :func:`time.monotonic`.
        Tests inject a manual clock to step through the state machine
        deterministically.
    """

    def __init__(
        self,
        backend: str,
        failure_threshold: int = 3,
        open_duration_s: float = 1.0,
        close_after: int = 1,
        clock: Callable[[], float] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if open_duration_s <= 0:
            raise ConfigurationError("open_duration_s must be positive")
        if close_after < 1:
            raise ConfigurationError("close_after must be >= 1")
        self.backend = backend
        self.failure_threshold = failure_threshold
        self.open_duration_s = open_duration_s
        self.close_after = close_after
        self._clock = clock or time.monotonic
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._probe_successes = 0
        metrics = (telemetry or NULL_TELEMETRY).metrics
        self._m_state = metrics.gauge(
            "proxy_breaker_state",
            "Breaker state per backend (0=closed, 1=open, 2=half-open)",
            backend=backend,
        )
        self._m_transitions = {
            state: metrics.counter(
                "proxy_breaker_transitions_total",
                "Breaker state transitions",
                backend=backend,
                to=state,
            )
            for state in (CLOSED, OPEN, HALF_OPEN)
        }
        self._m_rejected = metrics.counter(
            "proxy_breaker_rejections_total",
            "Requests rejected locally by an open breaker",
            backend=backend,
        )
        self._m_state.set(STATE_CODES[CLOSED])

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, *after* applying any due open -> half-open move."""
        self._maybe_half_open()
        return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        self._m_state.set(STATE_CODES[state])
        self._m_transitions[state].inc()

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.open_duration_s
        ):
            self._probe_in_flight = False
            self._probe_successes = 0
            self._transition(HALF_OPEN)

    def allow(self) -> bool:
        """Whether one request may proceed right now.

        In half-open state this *claims* the single probe slot, so the
        caller must follow up with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        self._m_rejected.inc()
        return False

    def record_success(self) -> None:
        """Report that an admitted request completed cleanly."""
        if self._state == HALF_OPEN:
            self._probe_in_flight = False
            self._probe_successes += 1
            if self._probe_successes >= self.close_after:
                self._failures = 0
                self._transition(CLOSED)
        else:
            self._failures = 0

    def record_failure(self) -> None:
        """Report that an admitted request failed at the transport layer."""
        if self._state == HALF_OPEN:
            self._probe_in_flight = False
            self._open()
        elif self._state == CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._failures = 0
        self._transition(OPEN)

    def reset(self) -> None:
        """Force the breaker closed (membership change / tests)."""
        self._failures = 0
        self._probe_in_flight = False
        self._probe_successes = 0
        if self._state != CLOSED:
            self._transition(CLOSED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.backend!r}, state={self._state!r})"
