"""Scripted failover chaos for the proxy tier.

:func:`run_proxy_chaos` is the repeatable "kill a backend mid-traffic"
story the CI smoke job and the live tests replay:

1. boot a proxy over N live backends (one backend mildly stalled by a
   seeded :class:`~repro.faults.sockets.SocketFaultPolicy`, so the
   socket fault path is exercised the whole run);
2. warm the cache and drive healthy traffic through a real
   :class:`~repro.net.client.NodeClient` pointed at the proxy;
3. kill one backend's listener mid-traffic and keep driving -- every
   client operation must still complete without a single
   :class:`~repro.errors.TransportError` (dead-backend keys degrade to
   misses / ``NOT_STORED``), and the victim's circuit breaker must be
   observed open via :mod:`repro.obs` metrics;
4. restart the backend and keep driving until the breaker re-closes and
   a victim-owned key is served again (warm recovery -- the listener
   died, the cache did not).

The outcome is a :class:`ProxyChaosResult` whose :meth:`to_dict` is the
JSON artifact CI uploads.  Everything that varies is derived from the
``seed``, so a red run can be replayed bit-for-bit.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import TransportError
from repro.faults.sockets import SocketFaultPolicy
from repro.faults.spec import FaultSchedule, FaultSpec
from repro.net.client import NodeClient
from repro.net.runtime import EventLoopThread
from repro.obs import create_telemetry
from repro.proxy.breaker import CLOSED, OPEN
from repro.proxy.router import ProxyConfig
from repro.proxy.server import ProxyHarness

PAYLOAD = b"x" * 64
"""Fixed chaos payload; value content is irrelevant to the story."""

SCRAPE_EXPECTED_METRICS = (
    "proxy_breaker_state",
    "proxy_breaker_transitions_total",
    "proxy_route_seconds",
    "net_client_roundtrip_seconds",
)
"""Metric families the mid-chaos ``stats obs`` scrape must contain."""


def _quantile_ms(latencies: list[float], q: float) -> float | None:
    """Exact quantile of measured client latencies, in milliseconds."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return round(ordered[index] * 1000.0, 3)


def _scrape_obs(host: str, port: int) -> dict:
    """Mid-chaos ``stats obs`` scrape of the live proxy endpoint.

    Returns a JSON-able verdict instead of raising: the chaos contract
    wants the scrape outcome in the artifact either way.
    """
    from repro.obs.scrape import parse_prometheus, scrape_text

    try:
        text = scrape_text(host, port, timeout_s=5.0)
        samples = parse_prometheus(text)
    except TransportError as exc:
        return {"ok": False, "error": str(exc)}
    present = sorted(
        {
            family
            for family in SCRAPE_EXPECTED_METRICS
            if any(s.name.startswith(family) for s in samples)
        }
    )
    missing = sorted(set(SCRAPE_EXPECTED_METRICS) - set(present))
    return {
        "ok": not missing,
        "present": present,
        "missing": missing,
        "samples": len(samples),
        "bytes": len(text),
    }


@dataclass
class ProxyChaosResult:
    """What one chaos run observed, JSON-serialisable via to_dict()."""

    nodes: list[str]
    victim: str
    stalled: str
    seed: int
    requests_total: int = 0
    client_transport_errors: int = 0
    hits: int = 0
    misses: int = 0
    stored: int = 0
    rejected_sets: int = 0
    breaker_opened: bool = False
    breaker_recovered: bool = False
    victim_served_after_restart: bool = False
    transitions: dict[str, int] = field(default_factory=dict)
    proxy_stats: dict[str, int] = field(default_factory=dict)
    degradation: dict = field(default_factory=dict)
    obs_scrape: dict = field(default_factory=dict)
    trace_spans: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """The chaos contract: clean clients, observable breaker cycle,
        a live metrics surface, and a measured degradation window."""
        return (
            self.client_transport_errors == 0
            and self.breaker_opened
            and self.breaker_recovered
            and self.victim_served_after_restart
            and self.transitions.get("open", 0) >= 1
            and self.transitions.get("half_open", 0) >= 1
            and self.transitions.get("closed", 0) >= 1
            and bool(self.obs_scrape.get("ok"))
            and self.degradation.get("window_s") is not None
        )

    def to_dict(self) -> dict:
        """Flat JSON-friendly report (the CI artifact)."""
        return {
            "ok": self.ok,
            "nodes": list(self.nodes),
            "victim": self.victim,
            "stalled": self.stalled,
            "seed": self.seed,
            "requests_total": self.requests_total,
            "client_transport_errors": self.client_transport_errors,
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "rejected_sets": self.rejected_sets,
            "breaker_opened": self.breaker_opened,
            "breaker_recovered": self.breaker_recovered,
            "victim_served_after_restart": self.victim_served_after_restart,
            "transitions": dict(self.transitions),
            "proxy_stats": dict(self.proxy_stats),
            "degradation": dict(self.degradation),
            "obs_scrape": dict(self.obs_scrape),
            "trace_spans": self.trace_spans,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def run_proxy_chaos(
    nodes: int = 4,
    memory_per_node: int = 1 << 20,
    keys: int = 64,
    healthy_ops: int = 200,
    dead_ops: int = 200,
    seed: int = 0,
    recovery_timeout_s: float = 10.0,
    trace_sample: float = 0.05,
    trace_jsonl: str | None = None,
) -> ProxyChaosResult:
    """Kill-and-recover one backend behind a live proxy; see module doc.

    Raises nothing on a failed contract -- inspect ``result.ok`` (the
    CLI and tests do), so a red run still yields a full artifact.

    Beyond the breaker contract this also measures the *degradation
    window* -- the wall time between killing the victim and recovery
    (breaker closed + a victim-owned hit) -- along with per-phase
    client p99 and hit rates, scrapes ``stats obs`` mid-chaos to assert
    the live metrics surface is up, and (with ``trace_jsonl``) exports
    the run's sampled cross-process spans.
    """
    names = [f"node-{i:03d}" for i in range(nodes)]
    victim = names[-1]
    stalled = names[0]
    rng = random.Random(seed)
    # One mild permanent stall on a non-victim backend: every chunk it
    # receives is delayed ~5ms, far below the client timeout, so the
    # fault path runs continuously without ever breaking the contract.
    policy = SocketFaultPolicy(
        FaultSchedule(
            [FaultSpec(0.0, "node_stall", node=stalled, factor=0.5)]
        ),
        base_delay_s=0.005,
    )
    config = ProxyConfig(
        failure_threshold=3,
        open_duration_s=0.25,
        close_after=1,
        timeout_s=1.0,
    )
    result = ProxyChaosResult(
        nodes=names, victim=victim, stalled=stalled, seed=seed
    )
    started = time.monotonic()
    telemetry = create_telemetry(
        "proxy-chaos",
        live_trace=True,
        trace_sample=trace_sample,
        trace_seed=seed,
    )
    harness = ProxyHarness(
        names,
        memory_per_node,
        config=config,
        fault_policy=policy,
        telemetry=telemetry,
    )
    client_loop = EventLoopThread(name="proxy-chaos-client")
    client: NodeClient | None = None
    phase_latencies: dict[str, list[float]] = {}
    phase_hits: dict[str, list[int]] = {}
    killed_at: float | None = None
    recovered_at: float | None = None
    try:
        harness.start()
        client_loop.start()
        host, port = harness.proxy_endpoint
        client = NodeClient("proxy", host, port, pool_size=4, timeout_s=5.0)
        keyspace = [f"chaos:{i:04d}" for i in range(keys)]

        def call(coro):
            return client_loop.call(coro, timeout=30.0)

        def drive(ops: int, phase: str) -> None:
            latencies = phase_latencies.setdefault(phase, [])
            hits = phase_hits.setdefault(phase, [])
            for _ in range(ops):
                key = rng.choice(keyspace)
                result.requests_total += 1
                try:
                    if rng.random() < 0.25:
                        stored = call(client.set(key, PAYLOAD))
                        if stored:
                            result.stored += 1
                        else:
                            result.rejected_sets += 1
                    else:
                        op_start = time.perf_counter()
                        value = call(client.get(key))
                        latencies.append(time.perf_counter() - op_start)
                        if value is None:
                            result.misses += 1
                            hits.append(0)
                        else:
                            result.hits += 1
                            hits.append(1)
                except TransportError:
                    result.client_transport_errors += 1

        # Phase 1: warm + healthy traffic.
        for key in keyspace:
            result.requests_total += 1
            if call(client.set(key, PAYLOAD)):
                result.stored += 1
        drive(healthy_ops, "healthy")

        # Phase 2: kill the victim mid-traffic; clients must stay clean.
        harness.kill_backend(victim)
        killed_at = time.monotonic()
        drive(dead_ops, "dead")
        result.obs_scrape = _scrape_obs(host, port)
        router = harness.router
        assert router is not None
        metrics = router.telemetry.metrics
        gauge = metrics.gauge("proxy_breaker_state", backend=victim)
        opens = metrics.counter(
            "proxy_breaker_transitions_total", backend=victim, to=OPEN
        )
        # The breaker may legitimately sit in half-open (probing the
        # still-dead listener) at observation time; "opened" means it
        # tripped at least once and has not settled closed.
        result.breaker_opened = (
            router.breakers[victim].state != CLOSED
            and gauge.value >= 1.0
            and opens.value >= 1
        )

        # Phase 3: restart and drive victim-owned keys until the breaker
        # re-closes and the victim serves a hit again (warm recovery).
        harness.restart_backend(victim)
        victim_keys = [
            key for key in keyspace if router.primary_for(key) == victim
        ] or keyspace
        deadline = time.monotonic() + recovery_timeout_s
        recovery_latencies = phase_latencies.setdefault("recovery", [])
        recovery_hits = phase_hits.setdefault("recovery", [])
        while time.monotonic() < deadline:
            key = victim_keys[result.requests_total % len(victim_keys)]
            result.requests_total += 1
            try:
                op_start = time.perf_counter()
                value = call(client.get(key))
                recovery_latencies.append(time.perf_counter() - op_start)
            except TransportError:
                result.client_transport_errors += 1
                value = None
            if value is not None:
                result.hits += 1
                recovery_hits.append(1)
                result.victim_served_after_restart = True
            else:
                result.misses += 1
                recovery_hits.append(0)
            if (
                result.victim_served_after_restart
                and router.breakers[victim].state == CLOSED
                and gauge.value == 0.0
            ):
                result.breaker_recovered = True
                recovered_at = time.monotonic()
                break
            time.sleep(0.05)

        result.transitions = {
            state: int(
                metrics.counter(
                    "proxy_breaker_transitions_total",
                    backend=victim,
                    to=state,
                ).value
            )
            for state in ("open", "half_open", "closed")
        }
        result.proxy_stats = router.stats_snapshot()
    finally:
        if client is not None:
            try:
                client_loop.call(client.close(), timeout=5.0)
            except Exception:
                pass
        client_loop.stop()
        harness.stop()
    result.elapsed_s = time.monotonic() - started

    # The degradation window: wall time between killing the victim's
    # listener and full recovery (breaker closed + victim-owned hit).
    phases = {
        phase: {
            "ops": len(latencies),
            "p50_ms": _quantile_ms(latencies, 0.50),
            "p99_ms": _quantile_ms(latencies, 0.99),
            "hit_rate": (
                round(sum(phase_hits[phase]) / len(phase_hits[phase]), 4)
                if phase_hits.get(phase)
                else None
            ),
        }
        for phase, latencies in phase_latencies.items()
    }
    result.degradation = {
        "killed_at_s": (
            round(killed_at - started, 3) if killed_at is not None else None
        ),
        "recovered_at_s": (
            round(recovered_at - started, 3)
            if recovered_at is not None
            else None
        ),
        "window_s": (
            round(recovered_at - killed_at, 3)
            if killed_at is not None and recovered_at is not None
            else None
        ),
        "phases": phases,
    }
    result.trace_spans = len(getattr(telemetry.live, "spans", ()))
    if trace_jsonl is not None:
        from repro.obs.livetrace import write_live_jsonl

        write_live_jsonl(
            trace_jsonl, telemetry.live, metrics=telemetry.metrics
        )
    return result
