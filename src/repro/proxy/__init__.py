"""mcrouter-style proxy tier: coalescing, replication, circuit breakers.

The net tier (:mod:`repro.net`) gives every client a direct connection
to every node; this package adds the intermediary production fleets put
in front of Memcached.  Clients speak the ordinary text protocol to one
:class:`ProxyServer`; behind it a :class:`ProxyRouter` routes each key
over the same ketama ring the cluster facades use, while three
robustness mechanisms keep the client-visible stream clean during
elasticity events:

- :class:`GetCoalescer` collapses concurrent same-key fetches into one
  backend round trip (thundering-herd suppression);
- :class:`HotKeyDetector` + :class:`ReplicaRegistry` promote the
  hottest keys onto extra backends, with first-hit-wins read fan-out
  and write-through invalidation;
- :class:`CircuitBreaker` per backend fails dead nodes fast, degrading
  gets to misses and sets to no-ops instead of surfacing transport
  errors.

The router subscribes to the Master's post-switch membership
(:meth:`repro.core.master.Master.subscribe_membership`), so scale-in and
scale-out happen behind a stable client endpoint -- the deployment story
ElMem assumes (Section II: ECE-Memcached sits behind a proxy/router
tier).  :func:`run_proxy_chaos` replays the kill-a-backend-mid-traffic
scenario end to end.
"""

from repro.proxy.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)
from repro.proxy.chaos import ProxyChaosResult, run_proxy_chaos
from repro.proxy.coalesce import GetCoalescer
from repro.proxy.hotkeys import HotKeyDetector, ReplicaRegistry
from repro.proxy.router import DEFAULT_PROXY_RETRY, ProxyConfig, ProxyRouter
from repro.proxy.server import ProxyHarness, ProxyServer

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "CircuitBreaker",
    "DEFAULT_PROXY_RETRY",
    "GetCoalescer",
    "HotKeyDetector",
    "ProxyChaosResult",
    "ProxyConfig",
    "ProxyHarness",
    "ProxyRouter",
    "ProxyServer",
    "ReplicaRegistry",
    "run_proxy_chaos",
]
