"""Hot-key detection and replica bookkeeping for the proxy tier.

A handful of keys dominating the request stream is the canonical
Memcached failure mode: the single node owning them saturates while the
rest of the fleet idles.  Production routers (mcrouter, Twemproxy
deployments, SPORE) answer with *hot-key replication*: detect the top
keys and serve their reads from R replicas instead of one primary.

:class:`HotKeyDetector` is a sampled frequency counter: every
``sample_every``-th observation is tallied, and the whole table decays
(halves) every ``decay_every`` samples so yesterday's spike does not pin
today's replica set.  Deliberately deterministic -- same observation
stream, same verdicts -- so storm tests are exactly reproducible.

:class:`ReplicaRegistry` tracks which keys are currently promoted and
onto which backends.  Placement is the router's job (it walks the ring's
member list); the registry only records and exposes the mapping, drops
entries when membership changes, and keeps the promoted set bounded by
``max_hot_keys``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.obs import NULL_TELEMETRY, Telemetry


class HotKeyDetector:
    """Sampled, decaying per-key frequency counter.

    Parameters
    ----------
    promote_threshold:
        Sampled-count at which a key is reported hot.
    sample_every:
        Tally one observation in ``sample_every`` (1 = count them all).
        Sampling is deterministic (a modulo, not a coin flip).
    decay_every:
        After this many *sampled* tallies, every count is halved and
        zero counts are dropped -- a cheap sliding window.
    max_tracked:
        Hard cap on tracked keys; when full, never-seen keys are not
        admitted until a decay sweep frees space (hot keys, by
        definition, are already in the table).
    """

    def __init__(
        self,
        promote_threshold: int = 32,
        sample_every: int = 1,
        decay_every: int = 10_000,
        max_tracked: int = 4096,
    ) -> None:
        if promote_threshold < 1:
            raise ConfigurationError("promote_threshold must be >= 1")
        if sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")
        if decay_every < 1:
            raise ConfigurationError("decay_every must be >= 1")
        if max_tracked < 1:
            raise ConfigurationError("max_tracked must be >= 1")
        self.promote_threshold = promote_threshold
        self.sample_every = sample_every
        self.decay_every = decay_every
        self.max_tracked = max_tracked
        self._counts: dict[str, int] = {}
        self._observations = 0
        self._tallies = 0

    def observe(self, key: str) -> bool:
        """Record one access; returns True when ``key`` is currently hot."""
        self._observations += 1
        if self._observations % self.sample_every == 0:
            if key in self._counts:
                self._counts[key] += 1
            elif len(self._counts) < self.max_tracked:
                self._counts[key] = 1
            self._tallies += 1
            if self._tallies >= self.decay_every:
                self.decay()
        return self.is_hot(key)

    def decay(self) -> None:
        """Halve every count and drop the zeros."""
        self._tallies = 0
        self._counts = {
            key: count // 2
            for key, count in self._counts.items()
            if count // 2 > 0
        }

    def is_hot(self, key: str) -> bool:
        """Whether ``key``'s sampled count has crossed the threshold."""
        return self._counts.get(key, 0) >= self.promote_threshold

    def count(self, key: str) -> int:
        """Current sampled count for ``key``."""
        return self._counts.get(key, 0)

    def top(self, n: int) -> list[str]:
        """The ``n`` highest-count keys, hottest first (ties by key)."""
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [key for key, _ in ranked[:n]]


class ReplicaRegistry:
    """Which hot keys are replicated, and onto which backends.

    The registry never serves data; it only answers "where else might
    this key live?" for the router's read fan-out and write-through
    invalidation.
    """

    def __init__(
        self,
        max_hot_keys: int = 8,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_hot_keys < 1:
            raise ConfigurationError("max_hot_keys must be >= 1")
        self.max_hot_keys = max_hot_keys
        self._replicas: dict[str, tuple[str, ...]] = {}
        metrics = (telemetry or NULL_TELEMETRY).metrics
        self._m_hot = metrics.gauge(
            "proxy_hot_keys", "Keys currently promoted to replicas"
        )
        self._m_promotions = metrics.counter(
            "proxy_replica_promotions_total",
            "Hot keys promoted to a replica set",
        )
        self._m_demotions = metrics.counter(
            "proxy_replica_demotions_total",
            "Hot keys dropped from the replica table",
        )

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, key: str) -> bool:
        return key in self._replicas

    @property
    def full(self) -> bool:
        """True when no further key can be promoted."""
        return len(self._replicas) >= self.max_hot_keys

    def replicas_for(self, key: str) -> tuple[str, ...]:
        """Replica backends for ``key`` (empty when not promoted)."""
        return self._replicas.get(key, ())

    def promote(self, key: str, replicas: Iterable[str]) -> None:
        """Register ``key`` as replicated onto ``replicas``."""
        targets = tuple(replicas)
        if not targets:
            return
        if key not in self._replicas and self.full:
            return
        if key not in self._replicas:
            self._m_promotions.inc()
        self._replicas[key] = targets
        self._m_hot.set(len(self._replicas))

    def demote(self, key: str) -> None:
        """Forget ``key``'s replicas."""
        if self._replicas.pop(key, None) is not None:
            self._m_demotions.inc()
            self._m_hot.set(len(self._replicas))

    def retain_backends(self, members: Iterable[str]) -> None:
        """Drop replica entries that reference departed backends.

        Called on membership switches: a replica set naming a retired
        node is no longer trustworthy, so the whole entry goes (the key
        will be re-promoted if it is still hot).
        """
        live = frozenset(members)
        stale = [
            key
            for key, replicas in self._replicas.items()
            if any(backend not in live for backend in replicas)
        ]
        for key in stale:
            self.demote(key)

    def clear(self) -> None:
        """Drop every promotion."""
        for key in list(self._replicas):
            self.demote(key)
