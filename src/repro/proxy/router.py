"""Request routing for the proxy tier: breakers, coalescing, replication.

:class:`ProxyRouter` owns everything between the proxy's client-facing
listener and the backend fleet:

- a ketama ring over the *active* backends (the same
  :class:`~repro.hashing.ketama.ConsistentHashRing` the cluster facades
  use, so the proxy and the Master route identically);
- one pooled :class:`~repro.net.client.NodeClient` per backend, with a
  short jittered retry schedule seeded per backend;
- one :class:`~repro.proxy.breaker.CircuitBreaker` per backend: a dead
  backend fails fast, gets degrade to misses and sets to no-ops
  (``NOT_STORED``) instead of surfacing transport errors to clients;
- a :class:`~repro.proxy.coalesce.GetCoalescer` collapsing concurrent
  same-key fetches behind a single backend round trip;
- hot-key replication: a sampled detector promotes the top keys onto R
  extra backends, reads fan out first-hit-wins across the copies (so a
  dead primary is *invisible* for replicated keys), and writes
  invalidate every replica before acknowledging (write-through
  invalidation).

The router is also a membership-change consumer: hand
:meth:`membership_listener` to
:meth:`~repro.core.master.Master.subscribe_membership` and every
post-switch ring lands here thread-safely, so scale events happen behind
a stable client surface.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.retry import RetryPolicy
from repro.errors import (
    ConfigurationError,
    MembershipError,
    TransportError,
)
from repro.hashing.hashutil import hash32
from repro.hashing.ketama import DEFAULT_VNODES, ConsistentHashRing
from repro.net.client import NodeClient
from repro.obs import Telemetry, create_telemetry
from repro.obs.metrics import LATENCY_SECONDS_BUCKETS
from repro.proxy.breaker import STATE_CODES, CircuitBreaker
from repro.proxy.coalesce import GetCoalescer
from repro.proxy.hotkeys import HotKeyDetector, ReplicaRegistry

Value = tuple[int, bytes]
"""Wire values are ``(flags, payload)`` pairs, as NodeClient returns."""

DEFAULT_PROXY_RETRY = RetryPolicy(
    max_attempts=2,
    base_backoff_s=0.02,
    max_backoff_s=0.2,
    jitter="decorrelated",
)
"""Short, jittered backend retry: fail over to degradation quickly."""


@dataclass(frozen=True)
class ProxyConfig:
    """Tunables for one proxy instance.

    Parameters
    ----------
    replication_factor:
        Extra copies per promoted hot key (0 disables replication).
    max_hot_keys:
        Bound on simultaneously promoted keys.
    promote_threshold / sample_every / decay_every:
        Hot-key detector knobs (see
        :class:`~repro.proxy.hotkeys.HotKeyDetector`).
    failure_threshold / open_duration_s / close_after:
        Circuit-breaker knobs (see
        :class:`~repro.proxy.breaker.CircuitBreaker`).
    timeout_s / retry / backoff_scale / pool_size:
        Backend client transport settings; the retry policy defaults to
        a short decorrelated-jitter schedule, seeded per backend.
    vnodes:
        Ring geometry; must match the cluster facades' so the proxy and
        the Master agree on key placement.
    """

    replication_factor: int = 1
    max_hot_keys: int = 8
    promote_threshold: int = 32
    sample_every: int = 1
    decay_every: int = 10_000
    failure_threshold: int = 3
    open_duration_s: float = 1.0
    close_after: int = 1
    timeout_s: float = 1.0
    retry: RetryPolicy | None = None
    backoff_scale: float = 1.0
    pool_size: int = 4
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if self.replication_factor < 0:
            raise ConfigurationError("replication_factor must be >= 0")


class ProxyRouter:
    """Routes client operations to backends with robustness mechanisms.

    Parameters
    ----------
    endpoints:
        ``{backend_name: (host, port)}`` for every reachable backend,
        including spares currently outside the ring.
    active:
        Backends initially on the ring; defaults to every endpoint.
    config:
        Robustness tunables (:class:`ProxyConfig`).
    telemetry:
        Metrics sink.  Unlike most components the default is an
        *enabled* registry, because breaker states and coalesce counters
        are the proxy's primary observable surface (the ``stats`` wire
        command reads them back).
    """

    def __init__(
        self,
        endpoints: dict[str, tuple[str, int]],
        active: Iterable[str] | None = None,
        config: ProxyConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("ProxyRouter needs at least one backend")
        self.config = config or ProxyConfig()
        self.telemetry = telemetry or create_telemetry()
        self._endpoints = dict(endpoints)
        names = sorted(active) if active is not None else sorted(endpoints)
        unknown = [name for name in names if name not in self._endpoints]
        if unknown:
            raise MembershipError(f"backends without endpoints: {unknown}")
        self.ring = ConsistentHashRing(names, vnodes=self.config.vnodes)
        self.clients: dict[str, NodeClient] = {}
        self.breakers: dict[str, CircuitBreaker] = {
            name: self._make_breaker(name) for name in self._endpoints
        }
        self.coalescer = GetCoalescer(self.telemetry)
        self.detector = HotKeyDetector(
            promote_threshold=self.config.promote_threshold,
            sample_every=self.config.sample_every,
            decay_every=self.config.decay_every,
        )
        self.replicas = ReplicaRegistry(
            max_hot_keys=self.config.max_hot_keys,
            telemetry=self.telemetry,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._background: set[asyncio.Task] = set()
        self._closed = False
        metrics = self.telemetry.metrics
        self._m_ops = {
            op: metrics.counter(
                "proxy_requests_total", "Client operations routed", op=op
            )
            for op in ("get", "set", "delete", "incr")
        }
        self._m_degraded = {
            op: metrics.counter(
                "proxy_degraded_total",
                "Operations degraded to miss/no-op by breakers or dead "
                "backends",
                op=op,
            )
            for op in ("get", "set", "delete", "incr")
        }
        self._m_fanout = metrics.counter(
            "proxy_fanout_reads_total",
            "Replicated-key reads fanned out to several backends",
        )
        self._m_stale = metrics.counter(
            "proxy_stale_serves_total",
            "Replicated-key reads served while the primary was rejected "
            "by its breaker",
        )
        self._m_repairs = metrics.counter(
            "proxy_read_repairs_total",
            "Background replica refreshes after a fan-out miss",
        )
        self._m_switches = metrics.counter(
            "proxy_membership_switches_total",
            "Membership updates applied to the proxy ring",
        )
        self._m_members = metrics.gauge(
            "proxy_active_backends", "Backends currently on the proxy ring"
        )
        self._m_members.set(len(names))
        self._obs = bool(metrics.enabled)
        self._m_route = {
            op: metrics.histogram(
                "proxy_route_seconds",
                "End-to-end routing time per client operation",
                buckets=LATENCY_SECONDS_BUCKETS,
                op=op,
            )
            for op in ("get", "set", "delete", "incr")
        }
        self._m_fanout_seconds = metrics.histogram(
            "proxy_fanout_seconds",
            "Time to the first hit of a replicated-read fan-out",
            buckets=LATENCY_SECONDS_BUCKETS,
        )
        self._m_breaker_reject_seconds = metrics.histogram(
            "proxy_breaker_reject_seconds",
            "Time to degrade a get rejected by circuit breakers",
            buckets=LATENCY_SECONDS_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _make_breaker(self, name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name,
            failure_threshold=self.config.failure_threshold,
            open_duration_s=self.config.open_duration_s,
            close_after=self.config.close_after,
            telemetry=self.telemetry,
        )

    def client(self, name: str) -> NodeClient:
        """The (lazily created) pooled client for backend ``name``."""
        client = self.clients.get(name)
        if client is None:
            host, port = self._endpoints[name]
            client = NodeClient(
                name,
                host,
                port,
                pool_size=self.config.pool_size,
                timeout_s=self.config.timeout_s,
                retry=self.config.retry or DEFAULT_PROXY_RETRY,
                backoff_scale=self.config.backoff_scale,
                retry_seed=hash32(name),
                telemetry=self.telemetry,
            )
            self.clients[name] = client
        return client

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Pin the router to the event loop its coroutines run on."""
        self._loop = loop

    @property
    def active_members(self) -> frozenset[str]:
        return self.ring.members

    def primary_for(self, key: str) -> str:
        """The ring owner of ``key`` under current membership."""
        return self.ring.node_for_key(key)

    def _spawn(self, coro: Any) -> None:
        """Track a fire-and-forget task (read repair, fan-out losers)."""
        task = asyncio.get_running_loop().create_task(coro)
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def close(self) -> None:
        """Settle background tasks and close every backend client."""
        self._closed = True
        if self._background:
            await asyncio.gather(
                *list(self._background), return_exceptions=True
            )
        for client in self.clients.values():
            await client.close()

    # ------------------------------------------------------------------
    # Breaker-guarded backend primitives
    # ------------------------------------------------------------------

    async def _admitted_get(self, backend: str, key: str) -> Value | None:
        """One backend ``get`` whose breaker already admitted it."""
        breaker = self.breakers[backend]
        try:
            value = await self.client(backend).get(key)
        except TransportError:
            breaker.record_failure()
            return None
        breaker.record_success()
        return value

    async def _guarded_set(
        self,
        backend: str,
        key: str,
        payload: bytes,
        flags: int,
        exptime: float,
    ) -> bool | None:
        """Breaker-guarded ``set``; None when rejected or failed."""
        breaker = self.breakers[backend]
        if not breaker.allow():
            return None
        try:
            stored = await self.client(backend).set(
                key, payload, flags=flags, exptime=exptime
            )
        except TransportError:
            breaker.record_failure()
            return None
        breaker.record_success()
        return stored

    async def _guarded_delete(self, backend: str, key: str) -> bool | None:
        """Breaker-guarded ``delete``; None when rejected or failed."""
        breaker = self.breakers[backend]
        if not breaker.allow():
            return None
        try:
            existed = await self.client(backend).delete(key)
        except TransportError:
            breaker.record_failure()
            return None
        breaker.record_success()
        return existed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    async def get(self, key: str) -> Value | None:
        """Routed ``get``: coalesced, replicated, breaker-degraded.

        Never raises for backend trouble -- a dead or open backend reads
        as a miss (or is papered over by a replica for hot keys).
        """
        if not self._obs:
            return await self._get_inner(key)
        start = time.perf_counter()
        try:
            return await self._get_inner(key)
        finally:
            self._m_route["get"].observe(time.perf_counter() - start)

    async def _get_inner(self, key: str) -> Value | None:
        self._m_ops["get"].inc()
        if not self.ring.members:
            self._m_degraded["get"].inc()
            return None
        primary = self.ring.node_for_key(key)
        hot = self.detector.observe(key)
        replicas = self.replicas.replicas_for(key)
        if hot and not replicas and self.config.replication_factor > 0:
            replicas = await self._promote(key, primary)
        return await self.coalescer.fetch(
            key, lambda: self._fetch(key, primary, replicas)
        )

    async def _fetch(
        self, key: str, primary: str, replicas: tuple[str, ...]
    ) -> Value | None:
        """The coalesced leader fetch: single-path or fan-out."""
        start = time.perf_counter() if self._obs else 0.0
        primary_admitted = self.breakers[primary].allow()
        if not replicas:
            if not primary_admitted:
                self._m_degraded["get"].inc()
                if self._obs:
                    self._m_breaker_reject_seconds.observe(
                        time.perf_counter() - start
                    )
                return None
            # A transport failure reads as a miss too -- the breaker,
            # not the client, decides when to stop trying.
            return await self._admitted_get(primary, key)
        candidates = [primary] if primary_admitted else []
        for backend in replicas:
            if backend in self.ring.members and self.breakers[
                backend
            ].allow():
                candidates.append(backend)
        if not candidates:
            self._m_degraded["get"].inc()
            if self._obs:
                self._m_breaker_reject_seconds.observe(
                    time.perf_counter() - start
                )
            return None
        if len(candidates) > 1:
            self._m_fanout.inc()
            if self._obs:
                fan_start = time.perf_counter()
                value, missed = await self._first_hit(key, candidates)
                self._m_fanout_seconds.observe(
                    time.perf_counter() - fan_start
                )
                return self._after_fetch(
                    key, primary, replicas, primary_admitted, value, missed
                )
        value, missed = await self._first_hit(key, candidates)
        return self._after_fetch(
            key, primary, replicas, primary_admitted, value, missed
        )

    def _after_fetch(
        self,
        key: str,
        primary: str,
        replicas: tuple[str, ...],
        primary_admitted: bool,
        value: Value | None,
        missed: list[str],
    ) -> Value | None:
        """Fan-out epilogue: stale accounting and background repair."""
        if value is not None and not primary_admitted:
            self._m_stale.inc()
        if value is not None:
            repair = [b for b in missed if b != primary and b in replicas]
            if repair:
                self._spawn(self._read_repair(key, repair, value))
        return value

    async def _first_hit(
        self, key: str, candidates: list[str]
    ) -> tuple[Value | None, list[str]]:
        """Fan out ``get`` to every candidate; first *hit* wins.

        Returns the winning value (or None when everyone missed) plus
        the backends that had answered with a miss by decision time.
        Losers still in flight are left to finish in the background --
        NOT cancelled -- so a dead primary's transport failures still
        reach its breaker even when a healthy replica answers first
        (cancelling them would keep the breaker blind forever).
        """
        tasks = {
            asyncio.ensure_future(self._admitted_get(backend, key)): backend
            for backend in candidates
        }
        pending: set = set(tasks)
        winner: Value | None = None
        missed: list[str] = []
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                value = task.result()
                if value is not None and winner is None:
                    winner = value
                elif value is None:
                    missed.append(tasks[task])
        for task in pending:
            self._background.add(task)
            task.add_done_callback(self._background.discard)
        return winner, missed

    async def _read_repair(
        self, key: str, backends: list[str], value: Value
    ) -> None:
        """Refresh replicas that missed during a winning fan-out."""
        flags, payload = value
        for backend in backends:
            stored = await self._guarded_set(
                backend, key, payload, flags, 0.0
            )
            if stored:
                self._m_repairs.inc()

    # ------------------------------------------------------------------
    # Hot-key promotion
    # ------------------------------------------------------------------

    def _replica_targets(self, primary: str) -> tuple[str, ...]:
        """R distinct backends after ``primary`` in sorted member order."""
        members = sorted(self.ring.members)
        if len(members) < 2:
            return ()
        start = members.index(primary) if primary in members else 0
        targets = []
        for offset in range(1, len(members)):
            if len(targets) >= self.config.replication_factor:
                break
            candidate = members[(start + offset) % len(members)]
            if candidate != primary:
                targets.append(candidate)
        return tuple(targets)

    async def _promote(self, key: str, primary: str) -> tuple[str, ...]:
        """Copy a hot key onto its replica set and register it."""
        if self.replicas.full:
            return ()
        targets = self._replica_targets(primary)
        if not targets:
            return ()
        if not self.breakers[primary].allow():
            return ()
        value = await self._admitted_get(primary, key)
        if value is None:
            return ()
        flags, payload = value
        copied = []
        for backend in targets:
            stored = await self._guarded_set(
                backend, key, payload, flags, 0.0
            )
            if stored:
                copied.append(backend)
        if copied:
            self.replicas.promote(key, copied)
        return tuple(copied)

    # ------------------------------------------------------------------
    # Writes (write-through invalidation)
    # ------------------------------------------------------------------

    async def set(
        self,
        key: str,
        payload: bytes,
        flags: int = 0,
        exptime: float = 0.0,
    ) -> bool:
        """Routed ``set``; False (a no-op) when the owner is unreachable.

        Registered replicas are invalidated *before* the call returns,
        so a read that follows a write can never be served a stale
        replica copy.  A replica that cannot be invalidated is demoted
        instead -- correctness over availability for that key.
        """
        if not self._obs:
            return await self._set_inner(key, payload, flags, exptime)
        start = time.perf_counter()
        try:
            return await self._set_inner(key, payload, flags, exptime)
        finally:
            self._m_route["set"].observe(time.perf_counter() - start)

    async def _set_inner(
        self,
        key: str,
        payload: bytes,
        flags: int = 0,
        exptime: float = 0.0,
    ) -> bool:
        self._m_ops["set"].inc()
        if not self.ring.members:
            self._m_degraded["set"].inc()
            return False
        primary = self.ring.node_for_key(key)
        stored = await self._guarded_set(
            primary, key, payload, flags, exptime
        )
        if stored is None:
            self._m_degraded["set"].inc()
            stored = False
        await self._invalidate_replicas(key)
        return bool(stored)

    async def delete(self, key: str) -> bool:
        """Routed ``delete``; False when degraded or absent."""
        if not self._obs:
            return await self._delete_inner(key)
        start = time.perf_counter()
        try:
            return await self._delete_inner(key)
        finally:
            self._m_route["delete"].observe(time.perf_counter() - start)

    async def _delete_inner(self, key: str) -> bool:
        self._m_ops["delete"].inc()
        if not self.ring.members:
            self._m_degraded["delete"].inc()
            return False
        primary = self.ring.node_for_key(key)
        existed = await self._guarded_delete(primary, key)
        if existed is None:
            self._m_degraded["delete"].inc()
            existed = False
        await self._invalidate_replicas(key)
        return bool(existed)

    async def _invalidate_replicas(self, key: str) -> None:
        """Write-through invalidation: drop every replica copy of ``key``."""
        for backend in self.replicas.replicas_for(key):
            removed = await self._guarded_delete(backend, key)
            if removed is None:
                # The copy could not be removed; stop serving from it.
                self.replicas.demote(key)

    async def incr(self, key: str, delta: int = 1) -> int | None:
        """Routed ``incr``; None when absent or degraded."""
        if not self._obs:
            return await self._incr_inner(key, delta)
        start = time.perf_counter()
        try:
            return await self._incr_inner(key, delta)
        finally:
            self._m_route["incr"].observe(time.perf_counter() - start)

    async def _incr_inner(self, key: str, delta: int = 1) -> int | None:
        self._m_ops["incr"].inc()
        if not self.ring.members:
            self._m_degraded["incr"].inc()
            return None
        primary = self.ring.node_for_key(key)
        breaker = self.breakers[primary]
        if not breaker.allow():
            self._m_degraded["incr"].inc()
            return None
        try:
            value = await self.client(primary).incr(key, delta)
        except TransportError:
            breaker.record_failure()
            self._m_degraded["incr"].inc()
            return None
        breaker.record_success()
        await self._invalidate_replicas(key)
        return value

    async def flush_all(self) -> None:
        """Best-effort ``flush_all`` on every active backend."""
        for backend in sorted(self.ring.members):
            breaker = self.breakers[backend]
            if not breaker.allow():
                continue
            try:
                await self.client(backend).flush_all()
            except TransportError:
                breaker.record_failure()
            else:
                breaker.record_success()
        self.replicas.clear()

    # ------------------------------------------------------------------
    # Membership (the Master's post-switch ring lands here)
    # ------------------------------------------------------------------

    async def update_membership(self, members: Iterable[str]) -> None:
        """Swap the routing ring to ``members`` (known backends only)."""
        names = sorted(members)
        if not names:
            raise MembershipError("proxy membership cannot be empty")
        unknown = [name for name in names if name not in self._endpoints]
        if unknown:
            raise MembershipError(
                f"membership names unknown to the proxy: {unknown}"
            )
        self.ring.set_members(names)
        self.replicas.retain_backends(names)
        for name in names:
            # A backend rejoining the ring deserves a fresh breaker
            # verdict rather than a stale open state.
            self.breakers[name].reset()
        self._m_switches.inc()
        self._m_members.set(len(names))

    def membership_listener(self) -> Callable[[Iterable[str]], None]:
        """A synchronous callback for
        :meth:`~repro.core.master.Master.subscribe_membership`.

        Safe to invoke from any thread; blocks until the proxy ring has
        switched, so the Master's post-switch world and the proxy's
        routing agree before the migration report returns.
        """

        def listener(members: Iterable[str]) -> None:
            loop = self._loop
            if loop is None:
                raise ConfigurationError(
                    "proxy router is not bound to a running event loop"
                )
            asyncio.run_coroutine_threadsafe(
                self.update_membership(list(members)), loop
            ).result(timeout=30.0)

        return listener

    # ------------------------------------------------------------------
    # Introspection (the `stats` wire command)
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict[str, int]:
        """Integer-valued proxy counters for the ``stats`` command."""
        metrics = self.telemetry.metrics
        snapshot: dict[str, int] = {
            "proxy_gets": int(self._m_ops["get"].value),
            "proxy_sets": int(self._m_ops["set"].value),
            "proxy_deletes": int(self._m_ops["delete"].value),
            "degraded_gets": int(self._m_degraded["get"].value),
            "degraded_sets": int(self._m_degraded["set"].value),
            "coalesce_leaders": int(
                metrics.counter("proxy_coalesce_leaders_total").value
            ),
            "coalesce_followers": int(
                metrics.counter("proxy_coalesce_followers_total").value
            ),
            "coalesce_inflight": self.coalescer.inflight,
            "fanout_reads": int(self._m_fanout.value),
            "stale_serves": int(self._m_stale.value),
            "read_repairs": int(self._m_repairs.value),
            "hot_keys": len(self.replicas),
            "active_backends": len(self.ring.members),
            "membership_switches": int(self._m_switches.value),
        }
        for name, breaker in sorted(self.breakers.items()):
            snapshot[f"breaker_state_{name}"] = STATE_CODES[breaker.state]
        return snapshot
