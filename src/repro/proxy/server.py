"""Client-facing listener for the proxy tier, plus a full harness.

:class:`ProxyServer` accepts the same memcached text dialect
:class:`~repro.net.server.NodeServer` speaks, so any existing client
(including :class:`~repro.net.client.NodeClient`) can point at the proxy
instead of a node without changing a line.  Each parsed command is
executed through a :class:`~repro.proxy.router.ProxyRouter`, which is
where coalescing, hot-key replication, and circuit breaking happen; the
listener itself stays a thin protocol adapter.

Commands are handled sequentially per connection (the protocol is
request/response ordered) but concurrently *across* connections, which
is what lets the coalescer collapse a thundering herd of clients.

Unlike a node server, the proxy never surfaces backend trouble to a
client: a dead backend degrades ``get`` to a miss and ``set`` to
``NOT_STORED``, so the client-visible stream stays error-free while the
fleet churns underneath -- the property the chaos suite asserts.

:class:`ProxyHarness` composes a backend
:class:`~repro.net.server.LiveClusterHarness` with a router and a proxy
listener on its own event loop, and is synchronous on the outside like
every other harness in the repo.
"""

from __future__ import annotations

import asyncio
from typing import Iterable

from repro.check.loopcheck import create_sanitizer
from repro.errors import ConfigurationError
from repro.faults.sockets import SocketFaultPolicy
from repro.net.runtime import EventLoopThread
from repro.net.server import LiveClusterHarness
from repro.obs import Telemetry, create_telemetry
from repro.obs.livetrace import (
    CURRENT_CONTEXT,
    TraceContext,
    parse_trace_args,
)
from repro.proxy.router import ProxyConfig, ProxyRouter

ROUTED_COMMANDS = frozenset({"get", "gets", "set", "delete", "incr", "decr"})
"""Commands that fan into backends and therefore get traced/spanned."""

CRLF = b"\r\n"
MAX_LINE = 8192
"""Longest accepted command line (multi-key gets stay well under it)."""

PROXY_VERSION = b"VERSION repro-proxy-1.0-elmem" + CRLF


class ProxyServer:
    """One asyncio TCP listener executing commands through a router.

    Parameters
    ----------
    router:
        The routing core; must live on the same event loop.
    host / port:
        Bind address; port 0 picks a free port, read back from
        :attr:`port` after :meth:`start`.
    drain_grace_s:
        How long :meth:`stop` waits for open connections to finish.
    """

    def __init__(
        self,
        router: ProxyRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_grace_s: float = 2.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.drain_grace_s = drain_grace_s
        self._server: asyncio.Server | None = None
        self._closing = False
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        telemetry = telemetry or router.telemetry
        metrics = telemetry.metrics
        self._m_conns = metrics.counter(
            "proxy_connections_total",
            "Client connections accepted by the proxy",
        )
        self._m_commands = metrics.counter(
            "proxy_commands_total", "Wire commands parsed by the proxy"
        )
        self._m_protocol_errors = metrics.counter(
            "proxy_protocol_errors_total",
            "Malformed client commands answered with an error line",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ProxyServer":
        """Bind and start accepting connections; idempotent."""
        if self._server is not None:
            return self
        self._closing = False
        self.router.bind_loop(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def endpoint(self) -> tuple[str, int]:
        """``(host, port)`` the proxy is reachable at."""
        if self._server is None:
            raise ConfigurationError("proxy server is not started")
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, drain open connections, then force-close."""
        server = self._server
        if server is None:
            return
        self._closing = True
        server.close()
        await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._tasks:
            done, pending = await asyncio.wait(
                self._tasks, timeout=self.drain_grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.router.close()
        self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        self._m_conns.inc()
        try:
            await self._serve_connection(reader, writer)
        except (OSError, EOFError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-command; nothing left to answer
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Trace context announced by a `trace` framing line, consumed by
        # the next command on this connection.
        pending_trace: TraceContext | None = None
        while not self._closing:
            try:
                line = await reader.readuntil(CRLF)
            except asyncio.IncompleteReadError:
                return
            except asyncio.LimitOverrunError:
                writer.write(b"CLIENT_ERROR line too long" + CRLF)
                await writer.drain()
                return
            self._m_commands.inc()
            text = line[:-2].decode("utf-8", "replace")
            first = text.split(None, 1)[0].lower() if text.split() else ""
            if first == "trace":
                ctx = parse_trace_args(text.split()[1:])
                if ctx is None:
                    pending_trace = None
                    self._m_protocol_errors.inc()
                    writer.write(b"CLIENT_ERROR bad trace frame" + CRLF)
                    await writer.drain()
                else:
                    pending_trace = ctx
                continue
            trace_ctx, pending_trace = pending_trace, None
            response = await self._execute(text, reader, trace_ctx)
            if response is None:
                return  # quit
            if response:
                writer.write(response)
                await writer.drain()

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    async def _execute(
        self,
        line: str,
        reader: asyncio.StreamReader,
        trace_ctx: TraceContext | None = None,
    ) -> bytes | None:
        """Run one command line; ``None`` means close the connection."""
        parts = line.split()
        if not parts:
            return b"ERROR" + CRLF
        command = parts[0].lower()
        args = parts[1:]
        if command in ROUTED_COMMANDS:
            return await self._execute_routed(command, args, reader, trace_ctx)
        if command == "stats":
            if args and args[0] == "obs":
                return self._cmd_stats_obs()
            return self._cmd_stats()
        if command == "version":
            return PROXY_VERSION
        if command == "flush_all":
            await self.router.flush_all()
            return b"OK" + CRLF
        if command == "quit":
            return None
        self._m_protocol_errors.inc()
        return b"ERROR" + CRLF

    async def _execute_routed(
        self,
        command: str,
        args: list[str],
        reader: asyncio.StreamReader,
        trace_ctx: TraceContext | None,
    ) -> bytes:
        """Run one backend-fanning command under a trace span.

        An incoming context (client-supplied ``trace`` frame) always
        joins its trace; without one the proxy is the trace root and the
        sampler decides.  The resulting context rides the ambient
        :data:`CURRENT_CONTEXT` so :class:`~repro.net.client.NodeClient`
        picks it up when it hits the backends.
        """
        live = self.router.telemetry.live
        span = None
        if trace_ctx is not None and live.enabled:
            span = live.start_span(f"proxy.{command}", trace_ctx)
        elif trace_ctx is None and live.enabled:
            span = live.start_trace(f"proxy.{command}")
        token = None
        if span is not None:
            token = CURRENT_CONTEXT.set(span.context)
        elif trace_ctx is not None:
            token = CURRENT_CONTEXT.set(trace_ctx)
        try:
            if command in ("get", "gets"):
                return await self._cmd_get(args, with_cas=command == "gets")
            if command == "set":
                return await self._cmd_set(args, reader)
            if command == "delete":
                return await self._cmd_delete(args)
            return await self._cmd_arith(args, command)
        finally:
            if token is not None:
                CURRENT_CONTEXT.reset(token)
            if span is not None:
                span.end()

    async def _cmd_get(self, keys: list[str], with_cas: bool) -> bytes:
        if not keys:
            self._m_protocol_errors.inc()
            return b"ERROR" + CRLF
        chunks: list[bytes] = []
        for key in keys:
            value = await self.router.get(key)
            if value is None:
                continue
            flags, payload = value
            header = f"VALUE {key} {flags} {len(payload)}"
            if with_cas:
                # The proxy does not route cas tokens (replicated keys
                # have several); a zero token keeps gets parseable while
                # making any cas attempt through the proxy a clean miss.
                header += " 0"
            chunks.append(header.encode("utf-8") + CRLF + payload + CRLF)
        chunks.append(b"END" + CRLF)
        return b"".join(chunks)

    async def _cmd_set(
        self, args: list[str], reader: asyncio.StreamReader
    ) -> bytes:
        # set <key> <flags> <exptime> <bytes> [noreply-token ignored]
        if len(args) not in (4, 5):
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad command line format" + CRLF
        key = args[0]
        try:
            flags = int(args[1])
            exptime = float(args[2])
            size = int(args[3])
        except ValueError:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad command line format" + CRLF
        if size < 0:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad data chunk" + CRLF
        block = await reader.readexactly(size + 2)
        if block[-2:] != CRLF:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad data chunk" + CRLF
        stored = await self.router.set(
            key, block[:-2], flags=flags, exptime=exptime
        )
        return (b"STORED" if stored else b"NOT_STORED") + CRLF

    async def _cmd_delete(self, args: list[str]) -> bytes:
        if len(args) != 1:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad command line format" + CRLF
        existed = await self.router.delete(args[0])
        return (b"DELETED" if existed else b"NOT_FOUND") + CRLF

    async def _cmd_arith(self, args: list[str], command: str) -> bytes:
        if len(args) != 2:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR bad command line format" + CRLF
        try:
            delta = int(args[1])
        except ValueError:
            self._m_protocol_errors.inc()
            return b"CLIENT_ERROR invalid numeric delta argument" + CRLF
        if command == "decr":
            delta = -delta
        value = await self.router.incr(args[0], delta)
        if value is None:
            return b"NOT_FOUND" + CRLF
        return str(value).encode("utf-8") + CRLF

    def _cmd_stats(self) -> bytes:
        body = b"".join(
            f"STAT {name} {value}".encode("utf-8") + CRLF
            for name, value in sorted(
                self.router.stats_snapshot().items()
            )
        )
        return body + b"END" + CRLF

    def _cmd_stats_obs(self) -> bytes:
        """``stats obs``: this proxy process's Prometheus text page.

        Because the harness shares one registry between the proxy and
        its in-process backends, a single scrape covers the whole tier.
        """
        from repro.obs.export import to_prometheus

        metrics = self.router.telemetry.metrics
        if getattr(metrics, "enabled", False):
            payload = to_prometheus(metrics).encode("utf-8")
        else:
            payload = b""
        header = f"VALUE obs 0 {len(payload)}".encode("utf-8")
        return header + CRLF + payload + CRLF + b"END" + CRLF


class ProxyHarness:
    """Backends + router + proxy listener, synchronous on the outside.

    Boots a :class:`~repro.net.server.LiveClusterHarness` for the
    backend fleet, then a :class:`ProxyServer` on its own event loop
    fronting them.  Clients connect to :attr:`proxy_endpoint`; scale
    events go through :meth:`router`'s membership listener; backend
    failures are injected with :meth:`kill_backend` /
    :meth:`restart_backend`.

    Parameters
    ----------
    node_names:
        Backends to boot (all start on the proxy ring unless ``active``
        narrows it).
    memory_per_node:
        Bytes of cache per backend.
    active:
        Initial ring membership; defaults to every backend.
    config:
        Router tunables (:class:`~repro.proxy.router.ProxyConfig`).
    fault_policy:
        Optional socket fault schedule applied to the *backend* servers
        (the proxy's own listener is never faulted -- the point is that
        clients behind the proxy stay clean while backends misbehave).
    sanitize:
        Run both the proxy loop and the backend loop under
        :class:`~repro.check.loopcheck.LoopSanitizer` instances (asyncio
        debug mode + blocking-call trap); read verdicts from
        :attr:`sanitizer` and ``backends.sanitizer`` after :meth:`stop`.
    """

    def __init__(
        self,
        node_names: Iterable[str],
        memory_per_node: int,
        active: Iterable[str] | None = None,
        config: ProxyConfig | None = None,
        host: str = "127.0.0.1",
        proxy_port: int = 0,
        fault_policy: SocketFaultPolicy | None = None,
        drain_grace_s: float = 2.0,
        telemetry: Telemetry | None = None,
        min_chunk: int = 96,
        growth_factor: float = 1.25,
        sanitize: bool = False,
    ) -> None:
        self.telemetry = telemetry or create_telemetry()
        # Backends share the proxy's telemetry, so one `stats obs`
        # scrape of the proxy covers node servers and nodes too.
        self.backends = LiveClusterHarness(
            node_names,
            memory_per_node,
            host=host,
            min_chunk=min_chunk,
            growth_factor=growth_factor,
            fault_policy=fault_policy,
            drain_grace_s=drain_grace_s,
            telemetry=self.telemetry,
            metrics=self.telemetry.metrics,
            sanitize=sanitize,
        )
        self._active = list(active) if active is not None else None
        self._config = config
        self._host = host
        self._proxy_port = proxy_port
        self._drain_grace_s = drain_grace_s
        self.sanitizer = create_sanitizer(sanitize)
        self.loop = EventLoopThread(
            name="proxy-harness", sanitizer=self.sanitizer
        )
        self.router: ProxyRouter | None = None
        self.server: ProxyServer | None = None
        self._started = False

    @property
    def proxy_endpoint(self) -> tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        if self.server is None:
            raise ConfigurationError("proxy harness is not started")
        return self.server.endpoint

    def start(self) -> "ProxyHarness":
        """Boot backends, router, and the proxy listener; idempotent."""
        if self._started:
            return self
        self.backends.start()
        self.router = ProxyRouter(
            self.backends.endpoints,
            active=self._active,
            config=self._config,
            telemetry=self.telemetry,
        )
        self.server = ProxyServer(
            self.router,
            host=self._host,
            port=self._proxy_port,
            drain_grace_s=self._drain_grace_s,
            telemetry=self.telemetry,
        )
        self.loop.start()
        self.loop.call(self.server.start(), timeout=10.0)
        self._started = True
        return self

    def stop(self) -> None:
        """Stop the proxy, then the backends; idempotent.

        Teardown order matters: the listener stops taking new
        connections, then the router settles its background tasks and
        closes every pooled backend client *while the loop is still
        running* -- stopping the loop first would strand those pooled
        sockets open until garbage collection, which leaks fds across
        repeated setup/teardown cycles in one process (the regression
        ``tests/test_harness_teardown.py`` guards).
        """
        if not self._started:
            return
        if self.server is not None:
            self.loop.call(self.server.stop(), timeout=30.0)
        self.loop.stop()
        self.backends.stop()
        self._started = False

    def kill_backend(self, name: str) -> None:
        """Stop one backend's listener (data survives for restart)."""
        self.backends.stop_node(name)

    def restart_backend(self, name: str) -> tuple[str, int]:
        """Bring a killed backend's listener back on the same port."""
        return self.backends.start_node(name)

    def set_membership(self, members: Iterable[str]) -> None:
        """Switch the proxy ring synchronously (testing convenience)."""
        if self.router is None:
            raise ConfigurationError("proxy harness is not started")
        self.loop.call(
            self.router.update_membership(list(members)), timeout=10.0
        )

    def breaker_state(self, backend: str) -> str:
        """Current breaker state for ``backend`` (reads the gauge side)."""
        if self.router is None:
            raise ConfigurationError("proxy harness is not started")
        return self.router.breakers[backend].state

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ProxyHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
