"""Command-line interface for the ElMem reproduction.

Usage (after ``pip install -e .``):

    python -m repro run --trace sys --policy elmem --duration 900
    python -m repro scenario --name sys --policies baseline elmem
    python -m repro traces
    python -m repro fusecache --items 65536 --lists 8
    python -m repro mrc --requests 100000 --profiler mimir
    python -m repro cost
    python -m repro check src/repro
    python -m repro serve --nodes 4 --port 11300
    python -m repro proxy --nodes 4 --port 11311
    python -m repro proxy-chaos --nodes 4 --json chaos.json
    python -m repro live-migrate --nodes 4 --retire 1

Every subcommand prints a human-readable report to stdout; ``run`` can
additionally export the per-second metrics as CSV/JSON.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from collections.abc import Callable, Iterator


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sim.experiment import ExperimentConfig, run_experiment
    from repro.sim.export import write_csv, write_json
    from repro.workloads.traces import make_trace

    schedule = []
    for spec in args.scale or []:
        when, target = spec.split(":", 1)
        schedule.append((float(when), int(target)))
    telemetry = None
    if args.trace_jsonl or args.prom:
        from repro.obs import create_telemetry

        telemetry = create_telemetry()
    config = ExperimentConfig(
        trace=make_trace(args.trace, duration_s=args.duration),
        policy=args.policy,
        schedule=schedule,
        autoscale=args.autoscale,
        seed=args.seed,
        telemetry=telemetry,
    )
    print(
        f"Running {args.trace} x {args.policy} for {args.duration}s "
        f"(seed {args.seed})..."
    )
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start
    summary = result.summary()
    print(f"done in {elapsed:.1f}s wall clock")
    for name, value in summary.items():
        print(f"  {name:20s} {value:.3f}")
    for event in result.policy.events:
        print(f"  [t={event.time:7.1f}s] {event.kind}: {event.detail}")
    if args.plot:
        from repro.analysis.asciiplot import chart

        print()
        print(
            chart(
                list(result.metrics.p95_series_ms()),
                "p95 RT (log scale)",
                markers=result.scaling_times
                and [t / len(result.metrics) for t in result.scaling_times],
                log_scale=True,
            )
        )
        print()
        print(
            chart(
                list(result.metrics.hit_rates()),
                "hit rate",
            )
        )
    if args.csv:
        print(f"metrics -> {write_csv(result.metrics, args.csv)}")
    if args.json:
        print(f"metrics -> {write_json(result.metrics, args.json)}")
    if telemetry is not None and args.trace_jsonl:
        from repro.obs.export import write_jsonl

        path = write_jsonl(
            args.trace_jsonl,
            tracer=telemetry.tracer,
            metrics=telemetry.metrics,
            meta={
                "trace": args.trace,
                "policy": args.policy,
                "duration_s": args.duration,
                "seed": args.seed,
            },
        )
        print(f"telemetry -> {path}")
    if telemetry is not None and args.prom:
        from pathlib import Path

        from repro.obs.export import to_prometheus

        Path(args.prom).write_text(to_prometheus(telemetry.metrics))
        print(f"prometheus -> {args.prom}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.livetrace import read_live_spans
    from repro.obs.export import read_jsonl
    from repro.obs.timeline import render_timeline, summary_table

    live_spans = read_live_spans(args.jsonl)
    if live_spans:
        return _obs_stitch(args, live_spans)
    if len(args.jsonl) != 1:
        print("multiple files given but none contain live spans")
        return 1
    dump = read_jsonl(args.jsonl[0])
    meta = {k: v for k, v in dump.meta.items() if k != "version"}
    if meta:
        print("run: " + ", ".join(f"{k}={v}" for k, v in meta.items()))
    if not dump.spans:
        print("(no span trees recorded)")
    for span in dump.spans:
        print()
        print(render_timeline(span, width=args.width, clock=args.clock))
    if dump.spans:
        print()
        print(summary_table(dump.spans, clock=args.clock))
    if dump.events:
        print()
        print(f"run-level events ({len(dump.events)}):")
        for event in dump.events:
            when = (
                f"t={event.sim_s:8.1f}s"
                if event.sim_s is not None
                else "t=       ?"
            )
            attrs = ", ".join(
                f"{k}={v}"
                for k, v in event.attributes.items()
                if k != "reason"
            )
            print(f"  [{when}] {event.name}  {attrs}")
    if dump.metrics:
        counters = [
            m for m in dump.metrics if m.get("kind") == "counter"
        ]
        if counters:
            print()
            print(f"counters ({len(counters)}):")
            for sample in sorted(
                counters, key=lambda m: -m.get("value", 0)
            ):
                labels = sample.get("labels") or {}
                label_text = (
                    "{"
                    + ",".join(f"{k}={v}" for k, v in labels.items())
                    + "}"
                    if labels
                    else ""
                )
                print(
                    f"  {sample['name']}{label_text} "
                    f"{sample.get('value', 0):g}"
                )
    return 0


def _obs_stitch(args: argparse.Namespace, live_spans: list) -> int:
    """Merge live-trace JSONL files and render stitched span trees."""
    from repro.obs.livetrace import stitch_spans, trace_to_span_tree
    from repro.obs.timeline import render_timeline

    traces = stitch_spans(live_spans)
    print(
        f"stitched {len(live_spans)} live span(s) from "
        f"{len(args.jsonl)} file(s) into {len(traces)} trace(s)"
    )
    shown = traces if args.limit <= 0 else traces[: args.limit]
    for trace in shown:
        print()
        print(
            f"trace {trace.trace_id}  "
            f"processes: {', '.join(trace.processes)}  "
            f"spans: {len(trace.spans)}  "
            f"wall: {(trace.end_s - trace.start_s) * 1000:.2f}ms"
        )
        print(
            render_timeline(
                trace_to_span_tree(trace), width=args.width, clock="wall"
            )
        )
    if len(shown) < len(traces):
        print()
        print(
            f"... {len(traces) - len(shown)} more trace(s); "
            "raise --limit to render them"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.analysis.degradation import summarize_post_scaling
    from repro.sim.experiment import run_experiment
    from repro.sim.scenarios import paper_config, scale_action_times

    times = scale_action_times(args.name, args.duration)
    print(
        f"Scenario {args.name!r}: scaling actions at "
        f"{[f'{t:.0f}s' for t in times]}"
    )
    for policy in args.policies:
        config = paper_config(
            args.name, policy, duration_s=args.duration, seed=args.seed
        )
        result = run_experiment(config)
        summary = summarize_post_scaling(
            result.metrics,
            times[0],
            horizon_s=min(450.0, args.duration - times[0] - 10),
            restoration_factor=2.0,
        )
        restoration = (
            f"{summary.restoration_time_s:.0f}s"
            if summary.restoration_time_s is not None
            else "not in window"
        )
        print(
            f"  {policy:10s} stable {summary.stable_rt_ms:7.1f}ms  "
            f"peak {summary.peak_rt_ms:9.1f}ms  "
            f"post-avg {summary.average_post_rt_ms:8.1f}ms  "
            f"restoration {restoration}"
        )
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.workloads.traces import TRACE_FACTORIES, make_trace

    print("trace      duration  min   mean  max   shape")
    descriptions = {
        "sys": "plateau then sharp sustained drop",
        "etc": "diurnal dip then recovery",
        "sap": "staircase decline",
        "nlanr": "mid-trace peak",
        "microsoft": "bursty gradual decline",
    }
    for name in sorted(TRACE_FACTORIES):
        trace = make_trace(name, duration_s=args.duration).normalised()
        values = trace.values
        print(
            f"{name:10s} {trace.duration_s:7d}s  {values.min():.2f}  "
            f"{values.mean():.2f}  {values.max():.2f}  "
            f"{descriptions[name]}"
        )
    return 0


def _cmd_fusecache(args: argparse.Namespace) -> int:
    from repro.core.fusecache import (
        fuse_cache_detailed,
        kway_merge_top_n,
        lower_bound_comparisons,
        sort_merge_top_n,
    )

    n, k = args.items, args.lists
    lists = [
        [float(n * k - (j * k + i)) for j in range(n)] for i in range(k)
    ]
    pick = n * k // 2
    print(f"selecting the {pick:,} hottest of {n * k:,} items "
          f"({k} lists x {n:,})")
    for name, algorithm in (
        ("FuseCache", lambda: fuse_cache_detailed(lists, pick)),
        ("k-way merge", lambda: kway_merge_top_n(lists, pick)),
        ("full sort", lambda: sort_merge_top_n(lists, pick)),
    ):
        start = time.perf_counter()
        result = algorithm()
        elapsed = time.perf_counter() - start
        print(f"  {name:12s} {elapsed * 1000:10.2f} ms")
        if name == "FuseCache":
            print(
                f"  {'':12s} {result.comparisons:,} comparisons in "
                f"{result.rounds} rounds (lower bound "
                f"{lower_bound_comparisons(pick, k):,.0f})"
            )
    return 0


def _cmd_mrc(args: argparse.Namespace) -> int:
    from repro.cache_analysis.mimir import MimirProfiler
    from repro.cache_analysis.mrc import HitRateCurve
    from repro.cache_analysis.shards import ShardsProfiler
    from repro.cache_analysis.stack_distance import StackDistanceProfiler
    from repro.sim.experiment import ExperimentConfig, build_stack

    config = ExperimentConfig(policy="baseline", seed=args.seed)
    dataset, generator, *_ = build_stack(config)
    keys = generator.key_stream(args.requests)
    if args.profiler == "exact":
        profiler = StackDistanceProfiler(args.requests)
    elif args.profiler == "shards":
        profiler = ShardsProfiler(0.1, args.requests)
    else:
        profiler = MimirProfiler()
    start = time.perf_counter()
    for key in keys:
        profiler.record(key)
    histogram, cold = profiler.histogram()
    curve = HitRateCurve(histogram, cold)
    elapsed = time.perf_counter() - start
    print(
        f"{args.profiler} profile of {args.requests:,} requests in "
        f"{elapsed:.2f}s (max hit rate {curve.max_hit_rate:.3f})"
    )
    print("cache items   hit rate")
    for capacity in np.geomspace(
        100, max(101, curve.max_capacity), num=12
    ).astype(int):
        print(f"{capacity:11,d}   {curve.hit_rate(int(capacity)):.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_digest

    print(render_digest(args.out_dir))
    return 0


def _check_rule_rows(args: argparse.Namespace) -> "list[tuple[str, str, str]]":
    """The rule catalogue covering every pack this invocation runs."""
    from repro.check import async_rule_catalogue, rule_catalogue
    from repro.check.protocol_conformance import conformance_catalogue

    rows = list(rule_catalogue())
    if getattr(args, "async_rules", False) or getattr(args, "list_rules", False):
        rows.extend(async_rule_catalogue())
    if getattr(args, "protocol", False) or getattr(args, "list_rules", False):
        rows.extend(conformance_catalogue())
    return rows


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import DEFAULT_RULES, lint_paths
    from repro.check.output import (
        github_annotations,
        violations_json,
        write_sarif,
    )
    from repro.check.strict import (
        strict_fault_sweep_report,
        strict_smoke_report,
    )

    paths = args.paths or ["src/repro"]
    if args.list_rules:
        for code, name, description in _check_rule_rows(args):
            print(f"  {code}  {name:24s} {description}")
        return 0

    machine = args.json_out
    rules = list(DEFAULT_RULES)
    if args.async_rules:
        from repro.check import ASYNC_RULES

        rules.extend(ASYNC_RULES)

    if not machine:
        print(f"lint: checking {', '.join(paths)}")
    violations = lint_paths(paths, rules=rules)
    conformance = []
    if args.protocol:
        from repro.check.protocol_conformance import default_conformance

        conformance = default_conformance()
    findings = violations + conformance
    failed = bool(findings)

    if not machine:
        for violation in findings:
            print("  " + violation.render())
        if violations:
            print(f"lint: {len(violations)} violation(s)")
        else:
            print("lint: clean")
        if args.protocol:
            if conformance:
                print(f"protocol: {len(conformance)} drift finding(s)")
            else:
                print("protocol: client/server/proxy models agree")

    sim_reports = []
    if not args.no_sim:
        sim_reports.append(strict_smoke_report())
        if args.strict_sim:
            sim_reports.append(strict_fault_sweep_report())
        if not machine:
            for report in sim_reports:
                print(
                    f"invariants: {report['label']}: "
                    f"{report['checks_run']} checks over "
                    f"{report['migrations']} migration(s), "
                    f"{report['violations']} violation(s) "
                    f"(hit rate {report['hit_rate']:.3f})"
                )

    if args.sarif:
        write_sarif(args.sarif, findings, _check_rule_rows(args))
        if not machine:
            print(f"sarif: wrote {args.sarif}")
    if args.annotate:
        for line in github_annotations(findings):
            print(line)
    if machine:
        import json

        print(
            json.dumps(
                {
                    "paths": paths,
                    "lint": violations_json(violations),
                    "conformance": violations_json(conformance),
                    "invariants": sim_reports,
                    "failed": failed,
                },
                indent=2,
            )
        )
    return 1 if failed else 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.analysis.cost import (
        MEMCACHED_NODE,
        WEB_NODE,
        EC2_COMPUTE_HOURLY,
        EC2_MEMORY_HOURLY,
        cost_premium,
        power_premium,
        power_watts,
    )

    print("Section II-B cost/energy model:")
    print(
        f"  web node   (2 sockets, 12 GB): {power_watts(WEB_NODE):6.1f} W"
    )
    print(
        "  cache node (1 socket, 72 GB):  "
        f"{power_watts(MEMCACHED_NODE):6.1f} W  "
        f"(+{power_premium():.0%} power)"
    )
    print(
        f"  EC2: ${EC2_COMPUTE_HOURLY:.3f}/hr compute vs "
        f"${EC2_MEMORY_HOURLY:.3f}/hr memory (+{cost_premium():.0%} cost)"
    )
    return 0


@contextlib.contextmanager
def _shutdown_signals() -> "Iterator[Callable[[float | None], str]]":
    """Install SIGINT/SIGTERM handlers; yield a blocking wait function.

    The handlers must be live *before* the serving banner is printed —
    a supervisor that reacts to the banner may fire its TERM within
    microseconds, and the default disposition would kill the process
    mid-connection.  The yielded callable blocks until a signal arrives
    or the given duration elapses, returning the signal name or ``""``.
    The previous handlers are restored on exit.
    """
    import signal
    import threading

    stop = threading.Event()
    received = {"name": ""}

    def handler(signum: int, frame: object) -> None:
        received["name"] = signal.Signals(signum).name
        stop.set()

    def wait(duration: float | None) -> str:
        stop.wait(timeout=duration)
        return received["name"]

    previous = {
        sig: signal.signal(sig, handler)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        yield wait
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _live_telemetry(args: argparse.Namespace, process: str):
    """Telemetry for a live serving command, or None when obs is off."""
    if not (args.obs or args.obs_jsonl):
        return None
    from repro.obs import create_telemetry

    return create_telemetry(
        process,
        live_trace=True,
        trace_sample=args.trace_sample,
        trace_seed=args.trace_seed,
    )


def _export_live_jsonl(telemetry, path: str | None) -> None:
    if telemetry is None or path is None:
        return
    from repro.obs.livetrace import write_live_jsonl

    count = write_live_jsonl(
        path, telemetry.live, metrics=telemetry.metrics
    )
    print(f"live spans -> {path} ({count} spans)", flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.memcached.slab import PAGE_SIZE
    from repro.net import LiveClusterHarness

    names = [f"live-{index:02d}" for index in range(args.nodes)]
    telemetry = _live_telemetry(args, "serve")
    harness = LiveClusterHarness(
        names,
        memory_per_node=args.memory_mb * PAGE_SIZE,
        host=args.host,
        port_base=args.port,
        telemetry=telemetry,
        metrics=telemetry.metrics if telemetry is not None else None,
        sanitize=args.sanitize,
    )
    harness.start()
    try:
        with _shutdown_signals() as wait_for_signal:
            print(f"live cluster up ({args.nodes} nodes):", flush=True)
            for name, (host, port) in sorted(harness.endpoints.items()):
                print(f"  {name}  {host}:{port}", flush=True)
            if args.duration is not None:
                print(f"serving for {args.duration:.0f}s...", flush=True)
            else:
                print("serving; SIGINT/SIGTERM to stop", flush=True)
            signal_name = wait_for_signal(args.duration)
        if signal_name:
            print(f"received {signal_name}; draining...", flush=True)
    finally:
        harness.stop()
    _export_live_jsonl(telemetry, args.obs_jsonl)
    code = _report_sanitizer(harness.sanitizer)
    print("stopped.", flush=True)
    return code


def _report_sanitizer(*sanitizers: "object") -> int:
    """Print each loop sanitizer's verdict; exit code 1 on findings."""
    code = 0
    for sanitizer in sanitizers:
        if sanitizer is None:
            continue
        report = sanitizer.report()  # type: ignore[attr-defined]
        if report["clean"]:
            print("sanitizer: loop clean", flush=True)
            continue
        code = 1
        for line in report["findings"]:
            print(f"sanitizer: {line}", flush=True)
    return code


def _cmd_proxy(args: argparse.Namespace) -> int:
    from repro.memcached.slab import PAGE_SIZE
    from repro.proxy import ProxyConfig, ProxyHarness

    names = [f"live-{index:02d}" for index in range(args.nodes)]
    config = ProxyConfig(
        replication_factor=args.replicas,
        failure_threshold=args.failure_threshold,
        open_duration_s=args.open_duration,
    )
    telemetry = _live_telemetry(args, "proxy")
    harness = ProxyHarness(
        names,
        memory_per_node=args.memory_mb * PAGE_SIZE,
        config=config,
        host=args.host,
        proxy_port=args.port,
        telemetry=telemetry,
        sanitize=args.sanitize,
    )
    harness.start()
    try:
        with _shutdown_signals() as wait_for_signal:
            host, port = harness.proxy_endpoint
            print(
                f"proxy up at {host}:{port} over {args.nodes} backends:",
                flush=True,
            )
            for name, (bhost, bport) in sorted(
                harness.backends.endpoints.items()
            ):
                print(f"  {name}  {bhost}:{bport}", flush=True)
            if args.duration is not None:
                print(f"serving for {args.duration:.0f}s...", flush=True)
            else:
                print("serving; SIGINT/SIGTERM to stop", flush=True)
            signal_name = wait_for_signal(args.duration)
        if signal_name:
            print(f"received {signal_name}; draining...", flush=True)
    finally:
        harness.stop()
    _export_live_jsonl(telemetry, args.obs_jsonl)
    code = _report_sanitizer(harness.sanitizer, harness.backends.sanitizer)
    print("stopped.", flush=True)
    return code


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import TopDashboard

    proxy = _parse_endpoint(args.proxy)
    nodes = {}
    for spec in args.node or []:
        name, _, endpoint = spec.partition("=")
        if not endpoint:
            name, endpoint = spec, spec
        nodes[name] = _parse_endpoint(endpoint)
    dashboard = TopDashboard(proxy, nodes, timeout_s=args.timeout)
    frames = 0
    with _shutdown_signals() as wait_for_signal:
        while True:
            snapshot = dashboard.sample()
            print(dashboard.render(snapshot, width=args.width), flush=True)
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                break
            print(flush=True)
            if wait_for_signal(args.interval):
                break
    return 0


def _parse_endpoint(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    return host, int(port)


def _cmd_proxy_chaos(args: argparse.Namespace) -> int:
    from repro.proxy import run_proxy_chaos

    print(
        f"proxy chaos: {args.nodes} backends, kill+restart one "
        f"mid-traffic (seed {args.seed})..."
    )
    result = run_proxy_chaos(
        nodes=args.nodes,
        keys=args.keys,
        healthy_ops=args.ops,
        dead_ops=args.ops,
        seed=args.seed,
        trace_sample=args.trace_sample,
        trace_jsonl=args.trace_jsonl,
    )
    print(f"  requests          {result.requests_total}")
    print(f"  transport errors  {result.client_transport_errors}")
    print(
        f"  hits/misses       {result.hits}/{result.misses} "
        f"(stored {result.stored}, rejected sets {result.rejected_sets})"
    )
    print(
        f"  breaker           opened={result.breaker_opened} "
        f"recovered={result.breaker_recovered} "
        f"transitions={result.transitions}"
    )
    print(
        f"  victim            {result.victim} "
        f"(served after restart: {result.victim_served_after_restart})"
    )
    window = result.degradation.get("window_s")
    window_text = f"{window:.3f}s" if window is not None else "unmeasured"
    print(
        f"  degradation       window {window_text} "
        f"(killed at {result.degradation.get('killed_at_s')}s, "
        f"recovered at {result.degradation.get('recovered_at_s')}s)"
    )
    for phase, numbers in result.degradation.get("phases", {}).items():
        print(
            f"    {phase:<9} p99 {numbers.get('p99_ms')}ms  "
            f"hit rate {numbers.get('hit_rate')}"
        )
    scrape = result.obs_scrape
    print(
        f"  obs scrape        ok={scrape.get('ok')} "
        f"({scrape.get('samples', 0)} samples, "
        f"missing: {scrape.get('missing', []) or 'none'})"
    )
    print(f"  trace spans       {result.trace_spans}")
    print(f"  wall clock        {result.elapsed_s:.2f}s")
    print(f"  verdict           {'OK' if result.ok else 'FAILED'}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"  wrote {args.json}")
    if args.window_json:
        import json

        with open(args.window_json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "degradation": result.degradation,
                    "obs_scrape": result.obs_scrape,
                },
                handle,
                indent=2,
            )
        print(f"  wrote {args.window_json}")
    if args.trace_jsonl:
        print(f"  wrote {args.trace_jsonl}")
    return 0 if result.ok else 1


def _cmd_controlplane(args: argparse.Namespace) -> int:
    from repro.controlplane import ControlPlane, ControlPlaneConfig
    from repro.core.autoscaler import (
        AutoScaler,
        AutoScalerConfig,
        ScalingEngine,
        ScalingEngineConfig,
    )
    from repro.memcached.slab import PAGE_SIZE
    from repro.net.cluster import LiveCluster
    from repro.obs import create_telemetry

    endpoints: dict[str, tuple[str, int]] = {}
    for index, spec in enumerate(args.target):
        name, eq, rest = spec.partition("=")
        if not eq:
            name, rest = f"target-{index:02d}", spec
        endpoints[name] = _parse_endpoint(rest)
    telemetry = create_telemetry("controlplane")
    engine = ScalingEngine(
        AutoScaler(
            AutoScalerConfig(
                db_capacity_rps=args.db_capacity,
                node_memory_bytes=args.memory_mb * PAGE_SIZE,
                bytes_per_item=args.bytes_per_item,
                min_nodes=args.min_nodes,
                max_nodes=args.max_nodes or len(endpoints),
            ),
            telemetry=telemetry,
        ),
        ScalingEngineConfig(
            evaluate_interval_s=args.interval,
            min_window=args.min_window,
            confirm_rounds=args.confirm_rounds,
            cooldown_s=args.cooldown,
        ),
    )
    live = LiveCluster(endpoints, timeout_s=args.timeout)
    control = ControlPlane(
        live,
        engine,
        config=ControlPlaneConfig(
            poll_interval_s=args.poll_interval,
            admin_host=args.admin_host,
            admin_port=args.admin_port,
        ),
        telemetry=telemetry,
    )
    control.start()
    try:
        with _shutdown_signals() as wait_for_signal:
            host, port = control.admin_endpoint
            print(
                f"control plane up over {len(endpoints)} nodes; "
                f"admin http://{host}:{port}",
                flush=True,
            )
            print(
                "  GET /status   GET /metrics   "
                'POST /scale {"target": N}   POST /drain/<node>',
                flush=True,
            )
            print(
                "  note: automatic decisions need a key feed "
                "(engine window); admin commands always work",
                flush=True,
            )
            if args.duration is not None:
                print(f"supervising for {args.duration:.0f}s...", flush=True)
            else:
                print("supervising; SIGINT/SIGTERM to stop", flush=True)
            signal_name = wait_for_signal(args.duration)
        if signal_name:
            print(f"received {signal_name}; stopping...", flush=True)
    finally:
        control.stop()
        live.close()
    print(
        f"  polls {control.status()['polls']}  "
        f"migrations {len(control.migrations)}  "
        f"events {len(control.events)}"
    )
    for migration in control.migrations:
        print(
            f"    {migration['action']} {migration['changed']} "
            f"({migration['source']}, {migration['outcome']})"
        )
    print("stopped.", flush=True)
    return 0


def _cmd_controlplane_scenario(args: argparse.Namespace) -> int:
    from repro.controlplane import run_controlplane_scenario
    from repro.memcached.slab import PAGE_SIZE

    print(
        f"control-plane scenario: {args.nodes} node processes, "
        f"{args.rate:.0f} ops/s for {args.duration:.0f}s; the engine "
        f"must decide a scale-in to {args.nodes - args.retire} "
        f"(seed {args.seed})..."
    )
    result = run_controlplane_scenario(
        nodes=args.nodes,
        retire=args.retire,
        rate=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        num_keys=args.keys,
        memory_per_node=args.memory_mb * PAGE_SIZE,
        poll_interval_s=args.poll_interval,
        evaluate_interval_s=args.interval,
        confirm_rounds=args.confirm_rounds,
        min_window=args.min_window,
        timeout_s=args.timeout,
        trace_jsonl=args.trace_jsonl,
    )
    decision = result.decision or {}
    print(
        f"  decision          {decision.get('current_nodes')} -> "
        f"{decision.get('target_nodes')} nodes "
        f"(p_min {decision.get('p_min')}, "
        f"rate {decision.get('request_rate')} rps, "
        f"confirmed x{decision.get('confirm_rounds')})"
    )
    migration = result.migration or {}
    print(
        f"  migration         {migration.get('changed')} retired, "
        f"outcome {migration.get('outcome')} "
        f"({migration.get('items_exported')} items exported)"
    )
    window = result.degradation.get("window_s")
    window_text = f"{window:.3f}s" if window is not None else "unmeasured"
    print(
        f"  degradation       window {window_text} "
        f"(killed at {result.degradation.get('killed_at_s')}s, "
        f"recovered at {result.degradation.get('recovered_at_s')}s, "
        f"{result.degradation.get('errors_in_window')} errors inside)"
    )
    admin = result.admin
    print(
        f"  admin API         {admin.get('endpoint')} "
        f"status={admin.get('status_ok')} "
        f"metrics={admin.get('metrics_ok')} "
        f"rejects-malformed={admin.get('rejects_malformed')}"
    )
    print(
        f"  load              {result.load.get('ops_ok')} ops ok, "
        f"{result.load.get('wire_errors')} wire errors, "
        f"p99 {result.load.get('response_ms', {}).get('p99')}ms"
    )
    print(f"  trace spans       {result.trace_spans}")
    print(f"  wall clock        {result.elapsed_s:.2f}s")
    print(f"  verdict           {'OK' if result.ok else 'FAILED'}")
    for failure in result.failures:
        print(f"    FAIL: {failure}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"  wrote {args.json}")
    if args.window_json:
        import json

        with open(args.window_json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "decision": result.decision,
                    "degradation": result.degradation,
                    "admin": result.admin,
                },
                handle,
                indent=2,
            )
        print(f"  wrote {args.window_json}")
    if args.trace_jsonl:
        print(f"  wrote {args.trace_jsonl}")
    return 0 if result.ok else 1


def _cmd_live_migrate(args: argparse.Namespace) -> int:
    from repro.memcached.slab import PAGE_SIZE
    from repro.net import run_live_migration

    print(
        f"live scale-in: {args.nodes} nodes -> retire {args.retire}, "
        f"{args.items} items over localhost TCP..."
    )
    telemetry = None
    if args.trace_jsonl:
        from repro.obs import create_telemetry

        telemetry = create_telemetry(
            "live-migrate",
            live_trace=True,
            trace_sample=1.0,
            trace_seed=args.seed,
        )
    result = run_live_migration(
        nodes=args.nodes,
        retire=args.retire,
        items=args.items,
        value_bytes=args.value_bytes,
        seed=args.seed,
        memory_per_node=args.memory_mb * PAGE_SIZE,
        verify=not args.no_verify,
        timeout_s=args.timeout,
        telemetry=telemetry,
        trace_jsonl=args.trace_jsonl,
        sanitize=args.sanitize,
        process_cluster=args.procs,
    )
    print(
        f"  outcome      {result.outcome} "
        f"({result.completed_pairs} pairs, "
        f"{result.failed_flows} failed flows)"
    )
    print(f"  retired      {', '.join(result.retired)}")
    print(f"  membership   {', '.join(result.membership_after)}")
    print(
        f"  items        {result.items_seeded} seeded, "
        f"{result.items_exported} exported, "
        f"{result.items_imported} imported"
    )
    if result.degradation_window_s is not None:
        print(
            f"  degradation  {result.degradation_window_s:.3f}s "
            "(membership in flux during execute)"
        )
    if result.trace_spans:
        print(f"  trace spans  {result.trace_spans}")
    print(f"  wall clock   {result.wall_seconds:.2f}s")
    if result.verified is None:
        print("  equivalence  skipped (--no-verify)")
    elif result.verified:
        print("  equivalence  OK: contents byte-identical to the "
              "in-process migration")
    else:
        print(
            "  equivalence  MISMATCH on "
            f"{', '.join(result.mismatched_nodes)}"
        )
    if args.sanitize:
        # run_live_migration raises InvariantViolation before reaching
        # here if either loop recorded a hazard.
        print("  sanitizer    clean (asyncio debug + blocking-call trap)")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"  wrote {args.json}")
    if args.trace_jsonl:
        print(f"  wrote {args.trace_jsonl}")
    ok = result.warm and result.verified is not False
    return 0 if ok else 1


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from repro.memcached.slab import PAGE_SIZE
    from repro.net import ProcessClusterHarness

    names = [f"proc-{index:02d}" for index in range(args.nodes)]
    harness = ProcessClusterHarness(
        names,
        memory_per_node=args.memory_mb * PAGE_SIZE,
        host=args.host,
        port_base=args.port,
        restart_crashed=args.restart_crashed,
    )
    harness.start()
    try:
        with _shutdown_signals() as wait_for_signal:
            pids = harness.pids
            print(
                f"process cluster up ({args.nodes} nodes, one OS "
                "process each):",
                flush=True,
            )
            for name, (host, port) in sorted(harness.endpoints.items()):
                print(
                    f"  {name}  {host}:{port}  pid {pids[name]}",
                    flush=True,
                )
            if args.duration is not None:
                print(f"serving for {args.duration:.0f}s...", flush=True)
            else:
                print("serving; SIGINT/SIGTERM to stop", flush=True)
            signal_name = wait_for_signal(args.duration)
        if signal_name:
            print(f"received {signal_name}; draining...", flush=True)
    finally:
        harness.stop()
    for event in harness.crash_events:
        print(
            f"crash: {event.node} (pid {event.pid}) exited "
            f"{event.exitcode}"
            + (", restarted" if event.restarted else ""),
            flush=True,
        )
    print("stopped.", flush=True)
    return 0


def _print_load_report(report: "object") -> None:
    data = report.to_dict()  # type: ignore[attr-defined]
    print(
        f"  offered      {data['offered_rate']:.0f} ops/s for "
        f"{data['duration_s']:.0f}s ({data['ops_total']} ops)"
    )
    print(
        f"  achieved     {data['achieved_rate']:.0f} ops/s "
        f"({data['ops_ok']} ok, {data['late_sends']} late, "
        f"{data['transport_errors']} transport / "
        f"{data['wire_errors']} wire errors)"
    )
    print(
        f"  outcomes     {data['hits']} hits, {data['misses']} misses, "
        f"{data['stored']} stored"
    )
    for label, title in (
        ("response_ms", "response"),
        ("service_ms", "service"),
        ("lateness_ms", "lateness"),
    ):
        q = data[label]
        print(
            f"  {title:<12} p50 {q['p50']} ms, p95 {q['p95']} ms, "
            f"p99 {q['p99']} ms"
        )
    migration = data.get("migration")
    if migration:
        print(
            f"  migration    {migration['outcome']}: retired "
            f"{', '.join(migration['retired'])}; window "
            f"{migration['killed_at_s']}s -> "
            f"{migration['recovered_at_s']}s "
            f"({migration['window_s']}s, "
            f"{migration['errors_in_window']} errors)"
        )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import run_load, run_load_migration
    from repro.memcached.slab import PAGE_SIZE

    if args.migrate and args.target:
        raise SystemExit(
            "--migrate needs process control over its own cluster; "
            "drop --target"
        )
    if args.migrate:
        print(
            f"open-loop load + scale-in: {args.nodes} node processes, "
            f"retire {args.retire} at "
            f"{args.migrate_at:.0%} of {args.duration:.0f}s..."
        )
        report = run_load_migration(
            rate=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            nodes=args.nodes,
            retire=args.retire,
            memory_per_node=args.memory_mb * PAGE_SIZE,
            num_keys=args.keys,
            set_fraction=args.set_fraction,
            value_bytes=args.value_bytes,
            trace=args.trace,
            migrate_at_frac=args.migrate_at,
            timeout_s=args.timeout,
        )
    else:
        endpoints = None
        if args.target:
            endpoints = {}
            for index, spec in enumerate(args.target):
                name, eq, rest = spec.partition("=")
                if not eq:
                    name, rest = f"target-{index:02d}", spec
                endpoints[name] = _parse_endpoint(rest)
        where = (
            f"{len(endpoints)} target endpoints"
            if endpoints is not None
            else f"{args.nodes} self-hosted node processes"
        )
        print(
            f"open-loop load: {args.rate:.0f} ops/s for "
            f"{args.duration:.0f}s against {where}..."
        )
        report = run_load(
            rate=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            endpoints=endpoints,
            nodes=args.nodes,
            memory_per_node=args.memory_mb * PAGE_SIZE,
            num_keys=args.keys,
            set_fraction=args.set_fraction,
            value_bytes=args.value_bytes,
            trace=args.trace,
            timeout_s=args.timeout,
        )
    _print_load_report(report)
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"  wrote {args.json}")
    ok = report.ops_ok > 0 and report.wire_errors == 0
    if report.migration is not None:
        ok = ok and report.migration.get("outcome") == "warm"
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.perfgate import run_gate

    ok, report = run_gate(
        quick=args.quick,
        gate=args.gate,
        out_path=args.out,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )
    print(report)
    return 0 if ok else 1


def _add_obs_flags(command: argparse.ArgumentParser) -> None:
    """Shared live-observability flags for serving commands."""
    command.add_argument(
        "--obs",
        action="store_true",
        help="enable live metrics + tracing (stats obs scrape surface)",
    )
    command.add_argument(
        "--obs-jsonl",
        default=None,
        help="export live spans + metrics on shutdown (implies --obs)",
    )
    command.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of requests that start a live trace",
    )
    command.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed for the trace sampling/id generator",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ElMem (ICDCS 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--trace", default="etc")
    run.add_argument("--policy", default="elmem")
    run.add_argument("--duration", type=int, default=900)
    run.add_argument("--seed", type=int, default=3)
    run.add_argument(
        "--scale",
        action="append",
        metavar="T:NODES",
        help="schedule a scaling action, e.g. --scale 400:7",
    )
    run.add_argument("--autoscale", action="store_true")
    run.add_argument(
        "--plot",
        action="store_true",
        help="render terminal charts of p95 RT and hit rate",
    )
    run.add_argument("--csv", help="export per-second metrics as CSV")
    run.add_argument("--json", help="export per-second metrics as JSON")
    run.add_argument(
        "--trace-jsonl",
        help="record telemetry and export it as JSON lines",
    )
    run.add_argument(
        "--prom",
        help="record metrics and export Prometheus text exposition",
    )
    run.set_defaults(func=_cmd_run)

    obs = sub.add_parser(
        "obs",
        help="render telemetry JSONL as ASCII timelines; multiple "
        "live-trace files are stitched by trace id",
    )
    obs.add_argument(
        "jsonl",
        nargs="+",
        help="file(s) written by run --trace-jsonl / --obs-jsonl",
    )
    obs.add_argument("--width", type=int, default=60)
    obs.add_argument("--clock", choices=["sim", "wall"], default="sim")
    obs.add_argument(
        "--limit",
        type=int,
        default=5,
        help="stitched traces to render (0 renders all)",
    )
    obs.set_defaults(func=_cmd_obs)

    scenario = sub.add_parser(
        "scenario", help="replay a paper scenario under several policies"
    )
    scenario.add_argument("--name", default="sys")
    scenario.add_argument(
        "--policies",
        nargs="+",
        default=["baseline", "elmem"],
    )
    scenario.add_argument("--duration", type=int, default=900)
    scenario.add_argument("--seed", type=int, default=3)
    scenario.set_defaults(func=_cmd_scenario)

    traces = sub.add_parser("traces", help="describe the demand traces")
    traces.add_argument("--duration", type=int, default=1500)
    traces.set_defaults(func=_cmd_traces)

    fusecache = sub.add_parser(
        "fusecache", help="FuseCache vs merge baselines"
    )
    fusecache.add_argument("--items", type=int, default=65_536)
    fusecache.add_argument("--lists", type=int, default=8)
    fusecache.set_defaults(func=_cmd_fusecache)

    mrc = sub.add_parser("mrc", help="profile a hit-rate curve")
    mrc.add_argument("--requests", type=int, default=100_000)
    mrc.add_argument(
        "--profiler",
        choices=["exact", "mimir", "shards"],
        default="mimir",
    )
    mrc.add_argument("--seed", type=int, default=3)
    mrc.set_defaults(func=_cmd_mrc)

    cost = sub.add_parser("cost", help="Section II-B cost/energy model")
    cost.set_defaults(func=_cmd_cost)

    check = sub.add_parser(
        "check",
        help="repo-specific lint rules + invariant smoke run",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    check.add_argument(
        "--no-sim",
        action="store_true",
        help="lint only; skip the strict-mode invariant smoke run",
    )
    check.add_argument(
        "--strict-sim",
        action="store_true",
        help="also run the fault-sweep scenario under strict mode",
    )
    check.add_argument(
        "--async",
        dest="async_rules",
        action="store_true",
        help="also run the REP1xx concurrency-safety rules (live tier)",
    )
    check.add_argument(
        "--protocol",
        action="store_true",
        help="cross-check server/client/proxy wire-protocol models",
    )
    check.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="print a machine-readable JSON report instead of prose",
    )
    check.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write findings as a SARIF 2.1.0 document",
    )
    check.add_argument(
        "--annotate",
        action="store_true",
        help="emit GitHub ::error workflow commands for findings",
    )
    check.set_defaults(func=_cmd_check)

    serve = sub.add_parser(
        "serve",
        help="boot a live asyncio Memcached cluster on localhost",
    )
    serve.add_argument(
        "--nodes", type=int, default=4, help="node servers to boot"
    )
    serve.add_argument(
        "--memory-mb", type=int, default=8, help="cache MB per node"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="base port (node i listens on port+i); 0 picks free ports",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit (default: until Ctrl-C)",
    )
    serve.add_argument(
        "--sanitize",
        action="store_true",
        help="run the loop under asyncio debug + blocking-call trap",
    )
    _add_obs_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    proxy = sub.add_parser(
        "proxy",
        help="boot a live cluster behind an mcrouter-style proxy",
    )
    proxy.add_argument(
        "--nodes", type=int, default=4, help="backend servers to boot"
    )
    proxy.add_argument(
        "--memory-mb", type=int, default=8, help="cache MB per backend"
    )
    proxy.add_argument("--host", default="127.0.0.1", help="bind address")
    proxy.add_argument(
        "--port",
        type=int,
        default=0,
        help="proxy listen port; 0 picks a free port",
    )
    proxy.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="extra copies per promoted hot key (0 disables)",
    )
    proxy.add_argument(
        "--failure-threshold",
        type=int,
        default=3,
        help="consecutive failures that trip a backend's breaker",
    )
    proxy.add_argument(
        "--open-duration",
        type=float,
        default=1.0,
        help="seconds a tripped breaker stays open before probing",
    )
    proxy.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit (default: until a signal)",
    )
    proxy.add_argument(
        "--sanitize",
        action="store_true",
        help="run both loops under asyncio debug + blocking-call trap",
    )
    _add_obs_flags(proxy)
    proxy.set_defaults(func=_cmd_proxy)

    top = sub.add_parser(
        "top",
        help="terminal dashboard over a live proxy's stats obs page",
    )
    top.add_argument(
        "--proxy",
        required=True,
        metavar="HOST:PORT",
        help="proxy endpoint to scrape",
    )
    top.add_argument(
        "--node",
        action="append",
        metavar="NAME=HOST:PORT",
        help="backend to scrape plain stats from (repeatable)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="frames to render then exit (default: until a signal)",
    )
    top.add_argument(
        "--once",
        action="store_const",
        dest="iterations",
        const=1,
        help="render a single frame and exit",
    )
    top.add_argument("--timeout", type=float, default=5.0)
    top.add_argument("--width", type=int, default=78)
    top.set_defaults(func=_cmd_top)

    chaos = sub.add_parser(
        "proxy-chaos",
        help="kill+recover a backend behind the proxy; assert clean clients",
    )
    chaos.add_argument(
        "--nodes", type=int, default=4, help="backend servers to boot"
    )
    chaos.add_argument(
        "--keys", type=int, default=64, help="keyspace size"
    )
    chaos.add_argument(
        "--ops",
        type=int,
        default=200,
        help="client operations per phase (healthy / dead)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="traffic seed")
    chaos.add_argument(
        "--json", default=None, help="write the chaos report to a file"
    )
    chaos.add_argument(
        "--trace-sample",
        type=float,
        default=0.05,
        help="fraction of proxy requests that start a live trace",
    )
    chaos.add_argument(
        "--trace-jsonl",
        default=None,
        help="export the run's sampled live spans as JSON lines",
    )
    chaos.add_argument(
        "--window-json",
        default=None,
        help="write the degradation window + scrape verdict to a file",
    )
    chaos.set_defaults(func=_cmd_proxy_chaos)

    cplane = sub.add_parser(
        "controlplane",
        help="autoscaling daemon over a live tier, with a JSON admin API",
    )
    cplane.add_argument(
        "--target",
        action="append",
        required=True,
        metavar="NAME=HOST:PORT",
        help="node endpoint to supervise (repeatable)",
    )
    cplane.add_argument(
        "--admin-host", default="127.0.0.1", help="admin API bind host"
    )
    cplane.add_argument(
        "--admin-port",
        type=int,
        default=0,
        help="admin API port (0 = ephemeral)",
    )
    cplane.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between stat polls",
    )
    cplane.add_argument(
        "--db-capacity",
        type=float,
        default=10_000.0,
        help="r_DB: requests/s the backing database absorbs",
    )
    cplane.add_argument(
        "--memory-mb",
        type=int,
        default=64,
        help="per-node memory in MiB-sized pages (node_memory_bytes)",
    )
    cplane.add_argument(
        "--bytes-per-item",
        type=float,
        default=128.0,
        help="average cached-item footprint",
    )
    cplane.add_argument(
        "--min-nodes", type=int, default=1, help="scale-in floor"
    )
    cplane.add_argument(
        "--max-nodes",
        type=int,
        default=0,
        help="scale-out ceiling (0 = number of targets)",
    )
    cplane.add_argument(
        "--interval",
        type=float,
        default=60.0,
        help="seconds between AutoScaler evaluations",
    )
    cplane.add_argument(
        "--min-window",
        type=int,
        default=50_000,
        help="key samples required before the engine evaluates",
    )
    cplane.add_argument(
        "--confirm-rounds",
        type=int,
        default=2,
        help="consecutive same-direction decisions before acting",
    )
    cplane.add_argument(
        "--cooldown",
        type=float,
        default=300.0,
        help="seconds after an action before the next may fire",
    )
    cplane.add_argument(
        "--duration",
        type=float,
        default=None,
        help="supervise for N seconds then exit (default: until signal)",
    )
    cplane.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-socket-operation timeout in seconds",
    )
    cplane.set_defaults(func=_cmd_controlplane)

    cpscenario = sub.add_parser(
        "controlplane-scenario",
        help="autoscaler-decided live scale-in under open-loop load",
    )
    cpscenario.add_argument(
        "--nodes", type=int, default=4, help="node processes to boot"
    )
    cpscenario.add_argument(
        "--retire",
        type=int,
        default=1,
        help="nodes the engine should decide to retire",
    )
    cpscenario.add_argument(
        "--rate", type=float, default=600.0, help="offered ops/s"
    )
    cpscenario.add_argument(
        "--duration", type=float, default=15.0, help="run length in seconds"
    )
    cpscenario.add_argument("--seed", type=int, default=7, help="tape seed")
    cpscenario.add_argument(
        "--keys", type=int, default=3000, help="distinct keys in the tape"
    )
    cpscenario.add_argument(
        "--memory-mb",
        type=int,
        default=8,
        help="per-node memory in MiB-sized pages",
    )
    cpscenario.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="daemon stat-poll interval in seconds",
    )
    cpscenario.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between AutoScaler evaluations",
    )
    cpscenario.add_argument(
        "--confirm-rounds",
        type=int,
        default=2,
        help="consecutive same-direction decisions before acting",
    )
    cpscenario.add_argument(
        "--min-window",
        type=int,
        default=1500,
        help="key samples required before the engine evaluates",
    )
    cpscenario.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-socket-operation timeout in seconds",
    )
    cpscenario.add_argument(
        "--json", default=None, help="write the scenario report to a file"
    )
    cpscenario.add_argument(
        "--window-json",
        default=None,
        help="write decision + degradation window + admin verdict to a file",
    )
    cpscenario.add_argument(
        "--trace-jsonl",
        default=None,
        help="export the run's spans + metrics as JSON lines",
    )
    cpscenario.set_defaults(func=_cmd_controlplane_scenario)

    live = sub.add_parser(
        "live-migrate",
        help="scripted scale-in over localhost TCP (three-phase, warm)",
    )
    live.add_argument(
        "--nodes", type=int, default=4, help="node servers to boot"
    )
    live.add_argument(
        "--retire", type=int, default=1, help="nodes to scale in"
    )
    live.add_argument(
        "--items", type=int, default=2000, help="items to seed"
    )
    live.add_argument(
        "--value-bytes", type=int, default=64, help="payload size per item"
    )
    live.add_argument("--seed", type=int, default=7, help="workload seed")
    live.add_argument(
        "--memory-mb", type=int, default=8, help="cache MB per node"
    )
    live.add_argument(
        "--timeout", type=float, default=5.0, help="client timeout seconds"
    )
    live.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the in-process equivalence replay",
    )
    live.add_argument(
        "--json", default=None, help="write the result summary to a file"
    )
    live.add_argument(
        "--trace-jsonl",
        default=None,
        help="trace the migration and export its live spans",
    )
    live.add_argument(
        "--sanitize",
        action="store_true",
        help="run both loops under asyncio debug + blocking-call trap "
        "and fail on any recorded hazard",
    )
    live.add_argument(
        "--procs",
        action="store_true",
        help="boot each node in its own OS process (shared-nothing)",
    )
    live.set_defaults(func=_cmd_live_migrate)

    serve_cluster = sub.add_parser(
        "serve-cluster",
        help="boot a shared-nothing cluster: one OS process per node",
    )
    serve_cluster.add_argument(
        "--nodes", type=int, default=4, help="node processes to spawn"
    )
    serve_cluster.add_argument(
        "--memory-mb", type=int, default=8, help="cache MB per node"
    )
    serve_cluster.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_cluster.add_argument(
        "--port",
        type=int,
        default=0,
        help="base port (node i listens on port+i); 0 picks free ports",
    )
    serve_cluster.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit (default: until Ctrl-C)",
    )
    serve_cluster.add_argument(
        "--restart-crashed",
        action="store_true",
        help="respawn a crashed node process (cold) on the same port",
    )
    serve_cluster.set_defaults(func=_cmd_serve_cluster)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop socket load generator (fixed-rate, CO-free)",
    )
    loadgen.add_argument(
        "--target",
        action="append",
        metavar="[NAME=]HOST:PORT",
        help="node endpoint to drive (repeatable); omit to self-host",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=1000.0,
        help="offered request rate (peak ops/s with --trace)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=10.0, help="run seconds"
    )
    loadgen.add_argument(
        "--seed", type=int, default=0, help="schedule seed"
    )
    loadgen.add_argument(
        "--nodes",
        type=int,
        default=3,
        help="node processes to self-host when no --target is given",
    )
    loadgen.add_argument(
        "--memory-mb",
        type=int,
        default=8,
        help="cache MB per self-hosted node",
    )
    loadgen.add_argument(
        "--keys", type=int, default=5000, help="distinct keys in the tape"
    )
    loadgen.add_argument(
        "--set-fraction",
        type=float,
        default=0.1,
        help="fraction of operations that are sets",
    )
    loadgen.add_argument(
        "--value-bytes", type=int, default=64, help="payload size per set"
    )
    loadgen.add_argument(
        "--trace",
        default=None,
        help="shape the rate by a demand trace (sys/etc/sap/...)",
    )
    loadgen.add_argument(
        "--migrate",
        action="store_true",
        help="run a Master scale-in mid-load and report the window",
    )
    loadgen.add_argument(
        "--retire",
        type=int,
        default=1,
        help="nodes to scale in with --migrate",
    )
    loadgen.add_argument(
        "--migrate-at",
        type=float,
        default=0.35,
        help="when to start the scale-in, as a fraction of --duration",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=5.0, help="client timeout seconds"
    )
    loadgen.add_argument(
        "--json", default=None, help="write the load report to a file"
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    bench = sub.add_parser(
        "bench",
        help="hot-path micro-benchmarks + performance regression gate",
    )
    bench.add_argument(
        "--gate",
        action="store_true",
        help="enforce the regression gate (exit 1 on failure)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller problem sizes / fewer repeats (CI mode)",
    )
    bench.add_argument(
        "--out",
        default="BENCH_latest.json",
        help="where to write the run's results JSON",
    )
    bench.add_argument(
        "--baseline",
        default="benchmarks/bench_baseline.json",
        help="committed baseline metrics to compare against",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with this run's metrics",
    )
    bench.set_defaults(func=_cmd_bench)

    report = sub.add_parser(
        "report", help="paper-vs-measured digest from benchmark outputs"
    )
    report.add_argument(
        "--out-dir",
        default="benchmarks/out",
        help="directory of benchmark report files",
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
